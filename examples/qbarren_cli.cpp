// Unified command-line driver for every qbarren experiment.
//
// Usage:
//   qbarren_cli variance   [--qubits 2,4,6,8,10] [--circuits 200]
//                          [--layers 50] [--seed 42] [--json out.json]
//   qbarren_cli train      [--optimizer adam] [--qubits 10] [--layers 5]
//                          [--iterations 50] [--deadline-sec 3600]
//                          [--nonfinite throw|abort|fallback]
//                          [--json out.json]
//   qbarren_cli sweep      [--repetitions 5] [--optimizer adam] ...
//   qbarren_cli landscape  [--qubits 2,5,10] [--layers 100] [--grid 21]
//   qbarren_cli express    [--qubits 4] [--layers 5] [--pairs 300]
//   qbarren_cli lightcone  [--qubits 6] [--layers 10]
//
// Long runs (variance / train / sweep) accept --checkpoint <file>: every
// completed cell is flushed atomically, Ctrl-C (SIGINT/SIGTERM) stops the
// run cooperatively after the cell in flight, and --resume restores the
// completed cells and finishes the rest, reproducing an uninterrupted run
// bit-for-bit. A checkpoint written under different options is rejected.
//
// The same subcommands run their cells on a fault-isolated thread pool:
//   --jobs N               worker threads (default: hardware concurrency;
//                          results are byte-identical at any N)
//   --cell-timeout-sec S   soft per-cell deadline; an overrunning cell is
//                          cancelled and reported as a timeout failure
//   --max-cell-failures K  tolerate up to K failed cells (default 0 =
//                          fail fast on the first); failed cells are
//                          listed on stderr and in the result JSON
//   --cell-retries R       extra attempts for non-finite cells, retried
//                          with the parameter-shift fallback engine
//   --engine NAME          gradient engine for variance/train/sweep
//                          (adjoint, parameter-shift, finite-diff, spsa;
//                          decorators like nan-at:<k>:<engine> inject
//                          faults for testing the failure paths)
// Run with no arguments for this help text.
#include <cstdio>
#include <exception>
#include <limits>
#include <optional>

#include "qbarren/bp/expressibility.hpp"
#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/lightcone.hpp"
#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/common/version.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

std::vector<const Initializer*> borrow(
    const std::vector<std::unique_ptr<Initializer>>& owned) {
  std::vector<const Initializer*> ptrs;
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  return ptrs;
}

/// Resilient-run plumbing shared by the long-running subcommands:
/// Ctrl-C cancellation, optional --checkpoint/--resume store, progress
/// lines on stderr.
struct ResilientRun {
  CancellationToken token;
  std::optional<Checkpoint> checkpoint;
  std::optional<ScopedSignalCancellation> signal_guard;
  RunControl control;

  ResilientRun(const CliArgs& args, const std::string& fingerprint) {
    if (args.has("checkpoint")) {
      const std::string path = args.get_string("checkpoint", "");
      QBARREN_REQUIRE(!path.empty(), "--checkpoint needs a file path");
      const bool resume = args.get_bool("resume", false);
      checkpoint.emplace(Checkpoint::open(path, fingerprint, resume));
      if (resume && checkpoint->cell_count() > 0) {
        std::fprintf(stderr, "resuming from %s (%zu completed cells)\n",
                     path.c_str(), checkpoint->cell_count());
      }
      control.checkpoint = &*checkpoint;
    } else {
      QBARREN_REQUIRE(!args.has("resume"),
                      "--resume requires --checkpoint <file>");
    }
    control.cancel = &token;
    signal_guard.emplace(token);
    control.progress = [](const RunProgress& p) {
      std::fprintf(stderr, "[%zu/%zu] %s%s\n", p.completed, p.total,
                   p.cell.c_str(),
                   p.from_checkpoint ? " (from checkpoint)" : "");
    };

    // Parallel execution: 0 jobs = hardware concurrency. The job count
    // never changes results, only wall-clock time.
    control.jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
    control.cell_timeout_seconds = args.get_double(
        "cell-timeout-sec", std::numeric_limits<double>::infinity());
    control.max_cell_failures =
        static_cast<std::size_t>(args.get_int("max-cell-failures", 0));
    control.max_cell_attempts =
        1 + static_cast<std::size_t>(args.get_int("cell-retries", 0));
  }
};

/// Per-run failure summary on stderr (failed cell keys + error class);
/// empty when every cell succeeded. The same records land in the result
/// JSON's "failures" array.
void report_failures(const std::vector<CellFailure>& failures) {
  if (failures.empty()) return;
  std::fprintf(stderr, "%zu cell(s) failed within the failure budget:\n%s",
               failures.size(), failure_summary(failures).c_str());
}

int cmd_variance(const CliArgs& args) {
  VarianceExperimentOptions options;
  options.qubit_counts.clear();
  for (int q : args.get_int_list("qubits", {2, 4, 6, 8, 10})) {
    options.qubit_counts.push_back(static_cast<std::size_t>(q));
  }
  options.circuits_per_point =
      static_cast<std::size_t>(args.get_int("circuits", 200));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 50));
  options.seed = args.get_uint("seed", 42);
  options.cost = cost_kind_from_name(args.get_string("cost", "global"));
  options.gradient_engine =
      args.get_string("engine", options.gradient_engine);

  ResilientRun resilient(args, options_fingerprint(options));
  const VarianceResult result =
      VarianceExperiment(options).run_paper_set(FanMode::kLayerTensor,
                                                resilient.control);
  report_failures(result.failures);
  std::printf("%s\n%s", result.variance_table().to_ascii().c_str(),
              result.decay_table().to_ascii().c_str());
  if (args.has("json")) {
    const std::string path = args.get_string("json", "variance.json");
    write_json_file(to_json(result), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

TrainingExperimentOptions training_options_from(const CliArgs& args) {
  TrainingExperimentOptions options;
  options.optimizer = args.get_string("optimizer", "gradient-descent");
  options.qubits = static_cast<std::size_t>(args.get_int("qubits", 10));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
  options.iterations =
      static_cast<std::size_t>(args.get_int("iterations", 50));
  options.learning_rate = args.get_double("lr", 0.1);
  options.seed = args.get_uint("seed", 7);
  options.gradient_engine =
      args.get_string("engine", options.gradient_engine);
  options.deadline_seconds = args.get_double(
      "deadline-sec", std::numeric_limits<double>::infinity());
  const std::string policy = args.get_string("nonfinite", "throw");
  if (policy == "throw") {
    options.non_finite_policy = NonFinitePolicy::kThrow;
  } else if (policy == "abort") {
    options.non_finite_policy = NonFinitePolicy::kAbortSeries;
  } else if (policy == "fallback") {
    options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  } else {
    throw InvalidArgument("--nonfinite must be throw, abort, or fallback");
  }
  return options;
}

int cmd_train(const CliArgs& args) {
  const TrainingExperimentOptions options = training_options_from(args);
  ResilientRun resilient(args, options_fingerprint(options));
  const TrainingResult result =
      TrainingExperiment(options).run_paper_set(FanMode::kLayerTensor,
                                                resilient.control);
  report_failures(result.failures);
  std::printf("%s\n%s", result.loss_table(5).to_ascii().c_str(),
              result.summary_table().to_ascii().c_str());
  if (args.has("json")) {
    const std::string path = args.get_string("json", "training.json");
    write_json_file(to_json(result), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  TrainingSweepOptions options;
  options.base = training_options_from(args);
  options.repetitions =
      static_cast<std::size_t>(args.get_int("repetitions", 5));
  ResilientRun resilient(args, options_fingerprint(options));
  const auto owned = paper_initializers();
  const TrainingSweepResult result =
      run_training_sweep(borrow(owned), options, resilient.control);
  report_failures(result.failures);
  std::printf("%s", result.summary_table().to_ascii().c_str());
  return 0;
}

int cmd_landscape(const CliArgs& args) {
  LandscapeOptions base;
  base.layers = static_cast<std::size_t>(args.get_int("layers", 100));
  base.grid_points = static_cast<std::size_t>(args.get_int("grid", 21));
  base.seed = args.get_uint("seed", 1);
  std::vector<std::size_t> widths;
  for (int q : args.get_int_list("qubits", {2, 5, 10})) {
    widths.push_back(static_cast<std::size_t>(q));
  }
  std::printf("%s", landscape_flatness_table(widths, base).to_ascii().c_str());
  if (args.has("json")) {
    LandscapeOptions single = base;
    single.qubits = widths.front();
    const std::string path = args.get_string("json", "landscape.json");
    write_json_file(to_json(scan_landscape(single)), path);
    std::printf("wrote %s (first width only)\n", path.c_str());
  }
  return 0;
}

int cmd_express(const CliArgs& args) {
  ExpressibilityOptions options;
  options.qubits = static_cast<std::size_t>(args.get_int("qubits", 4));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
  options.pairs = static_cast<std::size_t>(args.get_int("pairs", 300));
  options.seed = args.get_uint("seed", 17);
  const auto owned = paper_initializers();
  const auto results = analyze_expressibility(borrow(owned), options);
  std::printf("%s", expressibility_table(results).to_ascii().c_str());
  return 0;
}

int cmd_lightcone(const CliArgs& args) {
  const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 6));
  const auto layers = static_cast<std::size_t>(args.get_int("layers", 10));
  Rng rng(args.get_uint("seed", 1));
  VarianceAnsatzOptions options;
  options.layers = layers;
  const Circuit c = variance_ansatz(qubits, rng, options);

  std::vector<std::pair<std::string, LightConeReport>> reports;
  std::vector<std::size_t> all;
  for (std::size_t q = 0; q < qubits; ++q) {
    all.push_back(q);
  }
  reports.emplace_back("global cost (all qubits)",
                       analyze_light_cone(c, all));
  reports.emplace_back("Z0 Z1 observable", analyze_light_cone(c, {0, 1}));
  reports.emplace_back("Z0 observable", analyze_light_cone(c, {0}));
  std::printf("%s", light_cone_table(reports).to_ascii().c_str());
  return 0;
}

void print_help() {
  std::printf(
      "qbarren %s — barren-plateau experiments\n"
      "subcommands: variance | train | sweep | landscape | express | "
      "lightcone\n"
      "long runs accept --checkpoint <file> [--resume]; train/sweep also\n"
      "accept --deadline-sec <s> and --nonfinite throw|abort|fallback.\n"
      "variance/train/sweep run cells in parallel: --jobs <n> (0 = all\n"
      "cores), --cell-timeout-sec <s>, --max-cell-failures <k>,\n"
      "--cell-retries <r>; results are identical at any --jobs value.\n"
      "see the header of examples/qbarren_cli.cpp for per-command "
      "options.\n",
      kVersionString);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      print_help();
      return 0;
    }
    const std::string command = argv[1];
    const CliArgs args(argc - 1, argv + 1);
    if (command == "variance") return cmd_variance(args);
    if (command == "train") return cmd_train(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "landscape") return cmd_landscape(args);
    if (command == "express") return cmd_express(args);
    if (command == "lightcone") return cmd_lightcone(args);
    print_help();
    std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                 command.c_str());
    return 1;
  } catch (const qbarren::Cancelled& e) {
    // Completed checkpoint cells were flushed before this propagated;
    // rerun with --resume to finish. 130 matches the shell convention
    // for SIGINT termination.
    std::fprintf(stderr,
                 "interrupted: %s\n"
                 "rerun with the same options plus --resume to continue\n",
                 e.what());
    return 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
