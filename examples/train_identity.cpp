// Training analysis (paper Fig 5b/5c): trains the 10-qubit, 5-layer Eq 3
// ansatz to learn the identity function under every paper initializer and
// prints the loss curves.
//
// Run: ./train_identity [--optimizer adam] [--qubits 10] [--layers 5]
//                       [--iterations 50] [--lr 0.1] [--seed 7]
#include <cstdio>
#include <exception>

#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/common/cli.hpp"

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(argc, argv,
                                {"optimizer", "qubits", "layers", "iterations",
                                 "lr", "seed", "engine", "stride", "csv",
                                 "json"});

    qbarren::TrainingExperimentOptions options;
    options.optimizer = args.get_string("optimizer", "gradient-descent");
    options.qubits = static_cast<std::size_t>(args.get_int("qubits", 10));
    options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
    options.iterations =
        static_cast<std::size_t>(args.get_int("iterations", 50));
    options.learning_rate = args.get_double("lr", 0.1);
    options.seed = args.get_uint("seed", 7);
    options.gradient_engine = args.get_string("engine", "adjoint");

    std::printf(
        "training analysis: %zu qubits, %zu layers, %zu iterations, "
        "optimizer=%s, lr=%.3f\n\n",
        options.qubits, options.layers, options.iterations,
        options.optimizer.c_str(), options.learning_rate);

    const qbarren::TrainingExperiment experiment(options);
    const qbarren::TrainingResult result = experiment.run_paper_set();

    const auto stride = static_cast<std::size_t>(args.get_int("stride", 5));
    std::printf("%s\n", result.loss_table(stride).to_ascii().c_str());
    std::printf("%s\n", result.summary_table().to_ascii().c_str());

    if (args.has("csv")) {
      const std::string path = args.get_string("csv", "training.csv");
      result.loss_table(1).write_csv(path);
      std::printf("wrote %s\n", path.c_str());
    }
    if (args.has("json")) {
      const std::string path = args.get_string("json", "training.json");
      qbarren::write_json_file(qbarren::to_json(result), path);
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
