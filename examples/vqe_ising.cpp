// VQE on the transverse-field Ising chain — the kind of application the
// paper's introduction motivates (chemistry / optimization via PQCs).
//
// Minimizes <H> for H = -J sum Z_i Z_{i+1} - h sum X_i with the Eq 3
// hardware-efficient ansatz, comparing random vs Xavier initialization
// against the exact ground-state energy. On this non-trivial cost the
// initialization effect mirrors the paper's identity-learning result.
//
// Run: ./vqe_ising [--qubits 6] [--layers 3] [--iterations 80] [--j 1.0]
//                  [--h 1.0] [--seed 5]
#include <cstdio>
#include <exception>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/obs/hamiltonian.hpp"
#include "qbarren/opt/trainer.hpp"

int main(int argc, char** argv) {
  try {
    using namespace qbarren;
    const CliArgs args(argc, argv,
                       {"qubits", "layers", "iterations", "j", "h", "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 6));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 3));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 80));
    const double j = args.get_double("j", 1.0);
    const double h = args.get_double("h", 1.0);
    const std::uint64_t seed = args.get_uint("seed", 5);

    auto hamiltonian =
        std::make_shared<PauliSumObservable>(transverse_field_ising(qubits, j, h));
    const double exact = ground_state_energy(*hamiltonian);
    std::printf("TFI chain: %zu qubits, J = %.2f, h = %.2f\n", qubits, j, h);
    std::printf("exact ground-state energy: %.6f\n\n", exact);

    TrainingAnsatzOptions ansatz_options;
    ansatz_options.layers = layers;
    auto circuit = std::make_shared<const Circuit>(
        training_ansatz(qubits, ansatz_options));
    const CostFunction cost(circuit, hamiltonian);
    const auto engine = make_gradient_engine("adjoint");

    for (const char* init_name : {"random", "xavier-normal"}) {
      Rng rng(seed);
      auto params = make_initializer(init_name)->initialize(*circuit, rng);
      auto optimizer = make_optimizer("adam", 0.1);
      TrainOptions train_options;
      train_options.max_iterations = iterations;
      const TrainResult result = train(cost, *engine, *optimizer,
                                       std::move(params), train_options);

      std::printf("%s init:\n", init_name);
      const std::size_t stride = std::max<std::size_t>(1, iterations / 8);
      for (std::size_t it = 0; it < result.loss_history.size();
           it += stride) {
        std::printf("  iter %3zu  energy %.6f  (error %.6f)\n", it,
                    result.loss_history[it],
                    result.loss_history[it] - exact);
      }
      std::printf("  final     energy %.6f  (error %.6f)\n\n",
                  result.final_loss, result.final_loss - exact);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
