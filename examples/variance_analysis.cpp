// Gradient-variance analysis (paper Fig 5a, scaled down by default so it
// finishes in seconds; pass --circuits 200 --layers 100 --qubits
// 2,4,6,8,10 for the paper's full configuration).
//
// Prints the variance-vs-qubits table, the fitted decay rates, and each
// strategy's improvement over random initialization.
#include <cstdio>
#include <exception>

#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/cli.hpp"

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(
        argc, argv,
        {"qubits", "circuits", "layers", "seed", "cost", "engine", "csv",
         "json"});

    qbarren::VarianceExperimentOptions options;
    options.qubit_counts.clear();
    for (int q : args.get_int_list("qubits", {2, 4, 6, 8})) {
      options.qubit_counts.push_back(static_cast<std::size_t>(q));
    }
    options.circuits_per_point =
        static_cast<std::size_t>(args.get_int("circuits", 50));
    options.layers = static_cast<std::size_t>(args.get_int("layers", 40));
    options.seed = args.get_uint("seed", 42);
    options.cost =
        qbarren::cost_kind_from_name(args.get_string("cost", "global"));
    options.gradient_engine = args.get_string("engine", "parameter-shift");

    std::printf(
        "variance analysis: %zu circuits/point, %zu layers, cost=%s, "
        "engine=%s\n\n",
        options.circuits_per_point, options.layers,
        qbarren::cost_kind_name(options.cost).c_str(),
        options.gradient_engine.c_str());

    const qbarren::VarianceExperiment experiment(options);
    const qbarren::VarianceResult result = experiment.run_paper_set();

    std::printf("%s\n", result.variance_table().to_ascii().c_str());
    std::printf("%s\n", result.decay_table().to_ascii().c_str());

    if (args.has("csv")) {
      const std::string path = args.get_string("csv", "variance.csv");
      result.variance_table().write_csv(path);
      std::printf("wrote %s\n", path.c_str());
    }
    if (args.has("json")) {
      const std::string path = args.get_string("json", "variance.json");
      qbarren::write_json_file(qbarren::to_json(result), path);
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
