// Tests for Pauli-sum Hamiltonians, the transverse-field Ising factory,
// and the power-iteration ground-state solver.
#include "qbarren/obs/hamiltonian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

TEST(PauliSum, ValidatesTerms) {
  EXPECT_THROW(PauliSumObservable({}), InvalidArgument);
  EXPECT_THROW(PauliSumObservable({{1.0, "XZ"}, {1.0, "X"}}),
               InvalidArgument);
  EXPECT_THROW(PauliSumObservable({{1.0, "XA"}}), InvalidArgument);
  EXPECT_NO_THROW(PauliSumObservable({{1.0, "XZ"}, {-0.5, "IY"}}));
}

TEST(PauliSum, ExpectationIsLinearCombination) {
  // H = 2 Z - 3 X on one qubit; on |0>: <Z> = 1, <X> = 0 -> <H> = 2.
  const PauliSumObservable h({{2.0, "Z"}, {-3.0, "X"}});
  const StateVector zero(1);
  EXPECT_NEAR(h.expectation(zero), 2.0, 1e-12);

  // On |+>: <Z> = 0, <X> = 1 -> <H> = -3.
  StateVector plus(1);
  plus.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(h.expectation(plus), -3.0, 1e-12);
}

TEST(PauliSum, ApplyConsistentWithExpectation) {
  const PauliSumObservable h({{0.7, "ZZ"}, {-1.2, "XI"}, {0.3, "IY"}});
  StateVector s(2);
  s.apply_single_qubit(gates::u3(0.8, 0.2, 1.1), 0);
  s.apply_single_qubit(gates::u3(1.9, -0.5, 0.3), 1);
  s.apply_cz(0, 1);
  EXPECT_NEAR(h.expectation(s), s.inner_product(h.apply(s)).real(), 1e-11);
}

TEST(PauliSum, OneNormSumsAbsoluteCoefficients) {
  const PauliSumObservable h({{2.0, "Z"}, {-3.0, "X"}});
  EXPECT_DOUBLE_EQ(h.one_norm(), 5.0);
}

TEST(PauliSum, ExpectationBoundedByOneNorm) {
  const PauliSumObservable h({{0.5, "ZZ"}, {0.25, "XX"}});
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_controlled(gates::pauli_x(), 0, 1);
  EXPECT_LE(std::abs(h.expectation(s)), h.one_norm() + 1e-12);
}

TEST(Tfi, TermStructure) {
  const PauliSumObservable h = transverse_field_ising(4, 1.0, 0.5);
  // 3 ZZ bonds + 4 X fields.
  EXPECT_EQ(h.terms().size(), 7u);
  EXPECT_EQ(h.num_qubits(), 4u);
  EXPECT_EQ(h.terms()[0].paulis, "ZZII");
  EXPECT_DOUBLE_EQ(h.terms()[0].coefficient, -1.0);
  EXPECT_EQ(h.terms()[3].paulis, "XIII");
  EXPECT_DOUBLE_EQ(h.terms()[3].coefficient, -0.5);
  EXPECT_THROW((void)transverse_field_ising(1, 1.0, 1.0), InvalidArgument);
}

TEST(Tfi, ZeroFieldGroundEnergyIsClassical) {
  // h = 0: H = -J sum ZZ; ground state |00...0> with energy -J (n-1).
  const PauliSumObservable h = transverse_field_ising(4, 1.0, 0.0);
  EXPECT_NEAR(ground_state_energy(h), -3.0, 1e-8);
}

TEST(Tfi, TwoQubitCriticalGroundEnergyIsMinusSqrt5) {
  // n=2, J=h=1: eigenvalues of -ZZ - X0 - X1 are {-sqrt(5), -1, 1,
  // sqrt(5)}; ground energy -sqrt(5) (worked in tests/README-free form).
  const PauliSumObservable h = transverse_field_ising(2, 1.0, 1.0);
  EXPECT_NEAR(ground_state_energy(h), -std::sqrt(5.0), 1e-8);
}

TEST(Tfi, GroundEnergyLowerBoundsVariationalEnergies) {
  const PauliSumObservable h = transverse_field_ising(3, 1.0, 0.7);
  const double e0 = ground_state_energy(h);
  // A handful of product states must all be above the ground energy.
  for (const double theta : {0.0, 0.4, 1.2, 2.9}) {
    StateVector s(3);
    for (std::size_t q = 0; q < 3; ++q) {
      s.apply_single_qubit(gates::ry(theta), q);
    }
    EXPECT_GE(h.expectation(s), e0 - 1e-9) << theta;
  }
}

TEST(Tfi, StrongFieldGroundStateApproachesAllPlus) {
  // h >> J: ground state ~ |+...+> with energy ~ -h n.
  const PauliSumObservable h = transverse_field_ising(3, 0.01, 2.0);
  EXPECT_NEAR(ground_state_energy(h), -6.0, 0.05);
}

TEST(GroundState, WidthLimitEnforced) {
  std::vector<PauliTerm> terms{{1.0, std::string(13, 'Z')}};
  const PauliSumObservable h(terms);
  EXPECT_THROW((void)ground_state_energy(h), InvalidArgument);
}

TEST(PauliSum, GradientEnginesAgreeOnHamiltonianCost) {
  // Hamiltonians plug into the standard gradient machinery.
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  const PauliSumObservable h = transverse_field_ising(3, 1.0, 1.0);
  Rng rng(3);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 2.0);

  const ParameterShiftEngine shift;
  const AdjointEngine adjoint;
  const auto gs = shift.gradient(c, h, params);
  const auto ga = adjoint.gradient(c, h, params);
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], ga[i], 1e-10);
  }
}

}  // namespace
}  // namespace qbarren
