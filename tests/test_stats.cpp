// Unit tests for descriptive statistics and the OLS fit that underpins the
// variance-decay analysis.
#include "qbarren/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qbarren/common/error.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {
namespace {

TEST(Mean, KnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(mean(xs), 42.0);
}

TEST(Mean, RejectsEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW((void)mean(xs), InvalidArgument);
}

TEST(Variance, KnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(population_variance(xs), 4.0);
  EXPECT_NEAR(sample_variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Variance, ConstantSampleIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(sample_variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(population_variance(xs), 0.0);
}

TEST(Variance, SampleRequiresTwo) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)sample_variance(one), InvalidArgument);
  EXPECT_DOUBLE_EQ(population_variance(one), 0.0);
}

TEST(Variance, StableForTinyMagnitudes) {
  // Gradient samples in deep-plateau regimes are ~1e-8; two-pass variance
  // must not lose them to cancellation.
  const std::vector<double> xs{1e-8, 2e-8, 3e-8};
  EXPECT_NEAR(sample_variance(xs), 1e-16, 1e-20);
}

TEST(Stddev, IsSqrtOfVariance) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(sample_stddev(xs), std::sqrt(2.0));
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Median, DoesNotMutateInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  (void)median(xs);
  EXPECT_EQ(xs[0], 5.0);
  EXPECT_EQ(xs[1], 1.0);
}

TEST(Summarize, AllFieldsConsistent) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(s.variance));
}

TEST(Summarize, SingleElementHasZeroVariance) {
  const std::vector<double> xs{7.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(-2.5 * x + 7.0);
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, -2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-9);
  EXPECT_EQ(fit.n, 4u);
}

TEST(LinearFit, KnownNoisyFit) {
  // Hand-checked least squares: x = {0,1,2}, y = {0, 1, 1}.
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 1.0, 1.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0 / 6.0, 1e-12);
  EXPECT_GT(fit.r_squared, 0.7);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinearFit, TwoPointsAreExact) {
  const std::vector<double> xs{1.0, 3.0};
  const std::vector<double> ys{2.0, 8.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
}

TEST(LinearFit, ConstantYGivesZeroSlope) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{4.0, 4.0, 4.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  // R^2 is conventionally 1 for a perfect fit of a constant.
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinearFit, RejectsDegenerateInput) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW((void)linear_fit(xs, ys), NumericalError);

  const std::vector<double> one_x{1.0};
  const std::vector<double> one_y{1.0};
  EXPECT_THROW((void)linear_fit(one_x, one_y), InvalidArgument);

  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_THROW((void)linear_fit(two, three), InvalidArgument);
}

TEST(LinearFit, SlopeStderrShrinksWithMoreData) {
  Rng rng(99);
  auto make_fit = [&](std::size_t n) {
    std::vector<double> xs(n);
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = static_cast<double>(i);
      ys[i] = 2.0 * xs[i] + rng.normal(0.0, 1.0);
    }
    return linear_fit(xs, ys);
  };
  EXPECT_GT(make_fit(10).slope_stderr, make_fit(1000).slope_stderr);
}

TEST(LogTransform, ComputesNaturalLog) {
  const std::vector<double> xs{1.0, std::exp(1.0), std::exp(2.0)};
  const auto logs = log_transform(xs);
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_NEAR(logs[0], 0.0, 1e-12);
  EXPECT_NEAR(logs[1], 1.0, 1e-12);
  EXPECT_NEAR(logs[2], 2.0, 1e-12);
}

TEST(LogTransform, RejectsNonPositive) {
  const std::vector<double> zero{1.0, 0.0};
  EXPECT_THROW((void)log_transform(zero), NumericalError);
  const std::vector<double> negative{-1.0};
  EXPECT_THROW((void)log_transform(negative), NumericalError);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> up{2.0, 4.0, 6.0};
  const std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(Pearson, RejectsConstantInput) {
  const std::vector<double> xs{1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)pearson_correlation(xs, ys), NumericalError);
}

// Property sweep: OLS of an exponential decay recovers the decay rate after
// log transform — exactly the pipeline the variance experiment uses.
class DecayRecovery : public ::testing::TestWithParam<double> {};

TEST_P(DecayRecovery, LogLinearFitRecoversRate) {
  const double rate = GetParam();
  std::vector<double> qubits;
  std::vector<double> variances;
  for (int q = 2; q <= 10; q += 2) {
    qubits.push_back(q);
    variances.push_back(0.5 * std::exp(-rate * q));
  }
  const LinearFit fit = linear_fit(qubits, log_transform(variances));
  EXPECT_NEAR(fit.slope, -rate, 1e-10);
  EXPECT_NEAR(fit.intercept, std::log(0.5), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, DecayRecovery,
                         ::testing::Values(0.1, 0.5, 0.6931, 1.0, 1.3863,
                                           2.0));

}  // namespace
}  // namespace qbarren
