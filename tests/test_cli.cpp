// Unit tests for the CLI option parser.
#include "qbarren/common/cli.hpp"

#include <gtest/gtest.h>

#include "qbarren/common/error.hpp"
#include "qbarren/common/exit_codes.hpp"

namespace qbarren {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> allowed = {}) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(),
                 std::move(allowed));
}

TEST(CliArgs, SpaceSeparatedValue) {
  const CliArgs args = parse({"--qubits", "10"});
  EXPECT_TRUE(args.has("qubits"));
  EXPECT_EQ(args.get_int("qubits", 0), 10);
}

TEST(CliArgs, EqualsSeparatedValue) {
  const CliArgs args = parse({"--seed=99"});
  EXPECT_EQ(args.get_uint("seed", 0), 99u);
}

TEST(CliArgs, BareFlagIsTrue) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, FlagFollowedByOptionIsBoolean) {
  const CliArgs args = parse({"--verbose", "--qubits", "4"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("qubits", 0), 4);
}

TEST(CliArgs, MissingOptionUsesFallback) {
  const CliArgs args = parse({});
  EXPECT_FALSE(args.has("qubits"));
  EXPECT_EQ(args.get_int("qubits", 7), 7);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.5), 0.5);
  EXPECT_FALSE(args.get_bool("flag", false));
}

TEST(CliArgs, DoubleParsing) {
  const CliArgs args = parse({"--lr", "0.125"});
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.125);
}

TEST(CliArgs, BoolVariants) {
  EXPECT_TRUE(parse({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=on"}).get_bool("f", false));
  EXPECT_TRUE(parse({"--f=1"}).get_bool("f", false));
  EXPECT_FALSE(parse({"--f=no"}).get_bool("f", true));
  EXPECT_FALSE(parse({"--f=off"}).get_bool("f", true));
  EXPECT_FALSE(parse({"--f=0"}).get_bool("f", true));
  EXPECT_THROW((void)parse({"--f=maybe"}).get_bool("f", false),
               InvalidArgument);
}

TEST(CliArgs, IntListParsing) {
  const CliArgs args = parse({"--qubits", "2,4,6,8,10"});
  const std::vector<int> expected{2, 4, 6, 8, 10};
  EXPECT_EQ(args.get_int_list("qubits", {}), expected);
}

TEST(CliArgs, IntListFallback) {
  const CliArgs args = parse({});
  const std::vector<int> fb{1, 2};
  EXPECT_EQ(args.get_int_list("qubits", fb), fb);
}

TEST(CliArgs, IntListRejectsGarbage) {
  const CliArgs args = parse({"--qubits", "2,x,4"});
  EXPECT_THROW((void)args.get_int_list("qubits", {}), InvalidArgument);
}

TEST(CliArgs, NumberParsingRejectsGarbage) {
  const CliArgs args = parse({"--n", "abc"});
  EXPECT_THROW((void)args.get_int("n", 0), InvalidArgument);
  EXPECT_THROW((void)args.get_uint("n", 0), InvalidArgument);
  EXPECT_THROW((void)args.get_double("n", 0.0), InvalidArgument);
}

TEST(CliArgs, UnknownOptionRejectedWhenAllowlisted) {
  EXPECT_THROW(parse({"--typo", "1"}, {"qubits"}), InvalidArgument);
  EXPECT_NO_THROW(parse({"--qubits", "1"}, {"qubits"}));
}

TEST(CliArgs, EmptyAllowlistAcceptsAnything) {
  EXPECT_NO_THROW(parse({"--whatever", "1"}));
}

TEST(CliArgs, PositionalArgumentsPreserved) {
  const CliArgs args = parse({"file1", "--q", "2", "file2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(CliArgs, NegativeNumbersAsValues) {
  // A leading dash on a value is fine as long as it is not "--".
  const CliArgs args = parse({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(ExitCodes, TaxonomyIsStable) {
  // These values are API: scripts around `qbarren run/serve/submit` branch
  // on them (retry-on-4, fix-spec-on-3, resume-on-130), so any change here
  // is a breaking one and must be deliberate.
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitFailure, 1);
  EXPECT_EQ(kExitAdmissionRejected, 3);
  EXPECT_EQ(kExitWorkerCrashBudget, 4);
  EXPECT_EQ(kExitInterrupted, 130);  // 128 + SIGINT, the shell convention
}

TEST(ExitCodes, Distinct) {
  EXPECT_NE(kExitOk, kExitFailure);
  EXPECT_NE(kExitFailure, kExitAdmissionRejected);
  EXPECT_NE(kExitAdmissionRejected, kExitWorkerCrashBudget);
  EXPECT_NE(kExitWorkerCrashBudget, kExitInterrupted);
}

}  // namespace
}  // namespace qbarren
