// Tests for the circuit dataflow framework (analysis/dataflow.hpp): the
// wire graph on hand-built circuits, the parameter dependence graph, the
// backward light-cone fixpoint cross-checked against bp/lightcone.hpp's
// single-pass analysis on every paper ansatz, and a QB001/QB004
// regression over the checked-in QASM fixtures proving the dataflow-based
// lint rules report exactly what the rule-private scans used to.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qbarren/analysis/dataflow.hpp"
#include "qbarren/analysis/lint.hpp"
#include "qbarren/bp/lightcone.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/qasm_parser.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(QBARREN_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::size_t> all_qubits(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t q = 0; q < n; ++q) out[q] = q;
  return out;
}

// --- wire graph --------------------------------------------------------------

TEST(Dataflow, WireGraphLinksPredecessorsAndSuccessorsPerWire) {
  // op0: H q0 | op1: CNOT q0,q1 | op2: X q1 | op3: CZ q1,q2
  Circuit circuit(3);
  circuit.add_hadamard(0);
  circuit.add_cnot(0, 1);
  circuit.add_pauli_x(1);
  circuit.add_cz(1, 2);
  const CircuitDataflow flow(circuit);

  ASSERT_EQ(flow.num_ops(), 4u);
  EXPECT_EQ(flow.prev_on_wire(0, 0), CircuitDataflow::kNoOp);
  EXPECT_EQ(flow.next_on_wire(0, 0), 1u);
  EXPECT_EQ(flow.prev_on_wire(1, 0), 0u);
  EXPECT_EQ(flow.next_on_wire(1, 0), CircuitDataflow::kNoOp);
  EXPECT_EQ(flow.prev_on_wire(1, 1), CircuitDataflow::kNoOp);
  EXPECT_EQ(flow.next_on_wire(1, 1), 2u);
  EXPECT_EQ(flow.prev_on_wire(3, 1), 2u);
  EXPECT_EQ(flow.prev_on_wire(3, 2), CircuitDataflow::kNoOp);
  EXPECT_EQ(flow.next_on_wire(3, 2), CircuitDataflow::kNoOp);

  EXPECT_EQ(flow.ops_on_qubit(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(flow.ops_on_qubit(1), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(flow.ops_on_qubit(2), (std::vector<std::size_t>{3}));

  EXPECT_EQ(flow.wire_count(0), 1u);
  EXPECT_EQ(flow.wire_count(1), 2u);
  EXPECT_EQ(flow.wires(1)[0], 0u);
  EXPECT_EQ(flow.wires(1)[1], 1u);

  EXPECT_TRUE(flow.entangled(0));
  EXPECT_TRUE(flow.entangled(1));
  EXPECT_TRUE(flow.entangled(2));
}

TEST(Dataflow, RejectsQueriesOffTheWire) {
  Circuit circuit(3);
  circuit.add_hadamard(0);
  const CircuitDataflow flow(circuit);
  // q[1] is not a wire of op 0: the query is meaningless, not kNoOp.
  EXPECT_THROW((void)flow.next_on_wire(0, 1), InvalidArgument);
  EXPECT_THROW((void)flow.prev_on_wire(0, 1), InvalidArgument);
  EXPECT_THROW((void)flow.ops_on_qubit(3), InvalidArgument);
  EXPECT_THROW((void)flow.wires(1), InvalidArgument);
  EXPECT_FALSE(flow.entangled(0));
}

// --- parameter dependence graph ----------------------------------------------

TEST(Dataflow, ParameterGraphMatchesBuilderConventions) {
  const Circuit circuit = training_ansatz(4, {});
  const CircuitDataflow flow(circuit);
  for (std::size_t p = 0; p < circuit.num_parameters(); ++p) {
    EXPECT_EQ(flow.parameter_use_count(p), 1u);
    const std::size_t op = flow.op_for_parameter(p);
    ASSERT_NE(op, CircuitDataflow::kNoOp);
    EXPECT_EQ(circuit.operations()[op].param_index, p);
  }
}

// --- backward light cone -----------------------------------------------------

void expect_cone_matches_bp(const Circuit& circuit,
                            const std::vector<std::size_t>& observable) {
  const CircuitDataflow flow(circuit);
  const CircuitDataflow::LightCone cone =
      flow.backward_light_cone(observable);
  const LightConeReport reference = analyze_light_cone(circuit, observable);
  ASSERT_EQ(cone.alive.size(), reference.alive.size());
  for (std::size_t p = 0; p < cone.alive.size(); ++p) {
    EXPECT_EQ(cone.alive[p], reference.alive[p]) << "parameter " << p;
  }
  EXPECT_EQ(cone.dead_count, reference.dead_count);
  EXPECT_GE(cone.sweeps, 1u);  // the fixpoint was reached and re-checked
}

TEST(DataflowLightCone, MatchesBpAnalysisOnEveryPaperAnsatz) {
  for (const std::size_t n : {2u, 4u, 6u, 8u}) {
    Rng rng(3);
    VarianceAnsatzOptions options;
    options.layers = 6;
    const Circuit eq2 = variance_ansatz(n, rng, options);
    expect_cone_matches_bp(eq2, {0, 1});
    expect_cone_matches_bp(eq2, all_qubits(n));
    expect_cone_matches_bp(eq2, {n - 1});

    const Circuit eq3 = training_ansatz(n, {});
    expect_cone_matches_bp(eq3, {0});
    expect_cone_matches_bp(eq3, all_qubits(n));
  }
  const Circuit fig1 = motivational_ansatz(6, 100);
  expect_cone_matches_bp(fig1, {0, 1});
  expect_cone_matches_bp(fig1, all_qubits(6));
}

TEST(DataflowLightCone, ConeWidthsGrowTowardTheFullRegister) {
  // Eq-2 circuit vs Z0 Z1: parameters near the end of the circuit see a
  // narrow cone (the support has only just started spreading backward),
  // early parameters see the saturated one.
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const std::size_t n = 8;
  const Circuit circuit = variance_ansatz(n, rng, options);
  const CircuitDataflow flow(circuit);
  const CircuitDataflow::LightCone cone = flow.backward_light_cone({0, 1});

  std::size_t max_width = 0;
  for (std::size_t p = 0; p < cone.alive.size(); ++p) {
    if (!cone.alive[p]) {
      EXPECT_EQ(cone.cone_width[p], 0u);
      continue;
    }
    EXPECT_GE(cone.cone_width[p], 2u);  // at least the observable support
    EXPECT_LE(cone.cone_width[p], n);
    max_width = std::max(max_width, cone.cone_width[p]);
  }
  EXPECT_EQ(max_width, n);  // six CZ-ladder layers saturate 8 qubits
  EXPECT_GT(cone.dead_count, 0u);  // the trailing rotations are dead
}

TEST(DataflowLightCone, RejectsEmptyOrOutOfRangeSupport) {
  const Circuit circuit = training_ansatz(2, {});
  const CircuitDataflow flow(circuit);
  EXPECT_THROW((void)flow.backward_light_cone({}), InvalidArgument);
  EXPECT_THROW((void)flow.backward_light_cone({5}), InvalidArgument);
}

// --- QASM fixture regression -------------------------------------------------
//
// The QB001/QB004 rules used to walk the operation list directly; they now
// query the dataflow framework. These regressions pin the observable
// behavior on the checked-in fixtures so the migration is provably
// diagnostic-preserving.

TEST(DataflowFixtures, CleanFixtureStaysCleanUnderDataflowRules) {
  const ParsedQasm parsed = parse_qasm(read_fixture("hea_clean.qasm"));
  CircuitLintContext context;
  context.observable_qubits = all_qubits(parsed.circuit.num_qubits());
  const Diagnostics diags = lint_circuit(parsed.circuit, context);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.code, "QB001") << d.message;
    EXPECT_NE(d.code, "QB004") << d.message;
    EXPECT_NE(d.code, "QB008") << d.message;
  }
}

TEST(DataflowFixtures, SloppyFixtureReportsTheKnownFindings) {
  const ParsedQasm parsed = parse_qasm(read_fixture("hea_sloppy.qasm"));
  const Diagnostics diags = lint_circuit(parsed.circuit);
  // q[3] is rotated but no entangler touches it: exactly one QB004, on
  // the same location the pre-dataflow rule reported.
  const auto qb004 =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB004"; });
  ASSERT_NE(qb004, diags.end());
  EXPECT_EQ(qb004->location, "q[3]");
  EXPECT_EQ(std::count_if(
                diags.begin(), diags.end(),
                [](const Diagnostic& d) { return d.code == "QB004"; }),
            1);
  // The back-to-back rx pair on q[0] is same-axis (QB003). Parsed
  // rotations are trainable, so QB008 (constant gates only) stays silent.
  EXPECT_NE(std::find_if(diags.begin(), diags.end(),
                         [](const Diagnostic& d) { return d.code == "QB003"; }),
            diags.end());
  EXPECT_EQ(std::find_if(diags.begin(), diags.end(),
                         [](const Diagnostic& d) { return d.code == "QB008"; }),
            diags.end());
}

TEST(DataflowFixtures, FixtureLightConesMatchBpAnalysis) {
  for (const char* name : {"hea_clean.qasm", "hea_sloppy.qasm"}) {
    const ParsedQasm parsed = parse_qasm(read_fixture(name));
    if (parsed.circuit.num_parameters() == 0) continue;
    expect_cone_matches_bp(parsed.circuit, {0, 1});
    expect_cone_matches_bp(parsed.circuit,
                           all_qubits(parsed.circuit.num_qubits()));
  }
}

}  // namespace
}  // namespace qbarren
