// Tests for the gradient engines: analytic ground truth on small circuits
// and TEST_P cross-checks (parameter-shift == adjoint == finite-difference)
// on random circuits and observables.
#include "qbarren/grad/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"

namespace qbarren {
namespace {

Circuit one_qubit_ry() {
  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  return c;
}

TEST(ParameterShift, AnalyticGradientOfIdentityCost) {
  // C(theta) = sin^2(theta/2) => dC/dtheta = sin(theta)/2.
  const Circuit c = one_qubit_ry();
  const GlobalZeroObservable obs(1);
  const ParameterShiftEngine engine;
  for (double theta : {0.0, 0.3, M_PI / 2.0, M_PI, -1.2, 5.0}) {
    const auto grad = engine.gradient(c, obs, std::vector<double>{theta});
    ASSERT_EQ(grad.size(), 1u);
    EXPECT_NEAR(grad[0], std::sin(theta) / 2.0, 1e-11) << theta;
  }
}

TEST(ParameterShift, GradientOfZExpectation) {
  // <Z> after RY(theta) is cos(theta); derivative -sin(theta).
  const Circuit c = one_qubit_ry();
  const PauliStringObservable obs("Z");
  const ParameterShiftEngine engine;
  const double theta = 0.7;
  const auto grad = engine.gradient(c, obs, std::vector<double>{theta});
  EXPECT_NEAR(grad[0], -std::sin(theta), 1e-11);
}

TEST(ParameterShift, PartialMatchesGradientEntry) {
  Rng rng(1);
  VarianceAnsatzOptions options;
  options.layers = 4;
  const Circuit c = variance_ansatz(3, rng, options);
  const GlobalZeroObservable obs(3);
  const ParameterShiftEngine engine;
  Rng prng(2);
  const auto params =
      prng.uniform_vector(c.num_parameters(), 0.0, 2.0 * M_PI);
  const auto grad = engine.gradient(c, obs, params);
  for (std::size_t i = 0; i < params.size(); i += 3) {
    EXPECT_NEAR(engine.partial(c, obs, params, i), grad[i], 1e-12);
  }
}

TEST(Engines, ArgumentValidation) {
  const Circuit c = one_qubit_ry();
  const GlobalZeroObservable obs1(1);
  const GlobalZeroObservable obs2(2);
  const ParameterShiftEngine engine;
  const std::vector<double> ok{0.1};
  const std::vector<double> wrong{0.1, 0.2};
  EXPECT_THROW((void)engine.gradient(c, obs2, ok), InvalidArgument);
  EXPECT_THROW((void)engine.gradient(c, obs1, wrong), InvalidArgument);
  EXPECT_THROW((void)engine.partial(c, obs1, ok, 1), InvalidArgument);
}

TEST(FiniteDifference, StepMustBePositive) {
  EXPECT_THROW(FiniteDifferenceEngine(0.0), InvalidArgument);
  EXPECT_THROW(FiniteDifferenceEngine(-1e-6), InvalidArgument);
}

TEST(Adjoint, ValueAndGradientValueMatchesForward) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  const GlobalZeroObservable obs(3);
  const AdjointEngine engine;
  Rng rng(3);
  const auto params = rng.uniform_vector(c.num_parameters(), -1.0, 1.0);

  const ValueAndGradient vg = engine.value_and_gradient(c, obs, params);
  EXPECT_NEAR(vg.value, obs.expectation(c.simulate(params)), 1e-12);
  EXPECT_EQ(vg.gradient.size(), c.num_parameters());
}

TEST(Adjoint, HandlesNonRotationGatesInCircuit) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_rotation(gates::Axis::kY, 1);
  c.add_cnot(0, 1);
  c.add_t(0);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_cz(0, 1);
  const GlobalZeroObservable obs(2);
  const AdjointEngine adjoint;
  const ParameterShiftEngine shift;
  const std::vector<double> params{0.4, -0.9};
  const auto ga = adjoint.gradient(c, obs, params);
  const auto gs = shift.gradient(c, obs, params);
  ASSERT_EQ(ga.size(), gs.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gs[i], 1e-10);
  }
}

TEST(Adjoint, AccumulatesNothingForParameterFreeCircuit) {
  Circuit c(1);
  c.add_hadamard(0);
  const GlobalZeroObservable obs(1);
  const AdjointEngine engine;
  const auto grad = engine.gradient(c, obs, {});
  EXPECT_TRUE(grad.empty());
}

TEST(Spsa, DeterministicPerInstanceSeed) {
  const Circuit c = one_qubit_ry();
  const GlobalZeroObservable obs(1);
  const std::vector<double> params{0.6};
  const SpsaEngine a(42);
  const SpsaEngine b(42);
  EXPECT_EQ(a.gradient(c, obs, params), b.gradient(c, obs, params));
}

TEST(Spsa, AveragesTowardTrueGradient) {
  // SPSA is an unbiased (to O(c^2)) estimator: for a single parameter it is
  // exactly the symmetric difference quotient.
  const Circuit c = one_qubit_ry();
  const GlobalZeroObservable obs(1);
  const double theta = 0.8;
  const SpsaEngine engine(7, 1e-4);
  double acc = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    acc += engine.gradient(c, obs, std::vector<double>{theta})[0];
  }
  EXPECT_NEAR(acc / trials, std::sin(theta) / 2.0, 1e-6);
}

TEST(Spsa, ValidatesPerturbation) {
  EXPECT_THROW(SpsaEngine(1, 0.0), InvalidArgument);
}

TEST(Factory, KnownEnginesConstruct) {
  for (const char* name :
       {"parameter-shift", "finite-difference", "adjoint", "spsa"}) {
    const auto engine = make_gradient_engine(name);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), name);
  }
  EXPECT_THROW((void)make_gradient_engine("backprop"), NotFound);
}

// Property sweep: the three exact engines agree on random circuits across
// widths, observables, and parameter regimes.
struct AgreementCase {
  std::size_t qubits;
  std::size_t layers;
  CostKind cost;
  std::uint64_t seed;
};

class EngineAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EngineAgreement, ExactEnginesMatch) {
  const AgreementCase& ac = GetParam();
  Rng rng(ac.seed);
  VarianceAnsatzOptions options;
  options.layers = ac.layers;
  const Circuit c = variance_ansatz(ac.qubits, rng, options);
  const auto obs = make_cost_observable(ac.cost, ac.qubits);
  const auto params =
      rng.uniform_vector(c.num_parameters(), 0.0, 2.0 * M_PI);

  const ParameterShiftEngine shift;
  const AdjointEngine adjoint;
  const FiniteDifferenceEngine fd(1e-6);

  const auto gs = shift.gradient(c, *obs, params);
  const auto ga = adjoint.gradient(c, *obs, params);
  const auto gf = fd.gradient(c, *obs, params);
  ASSERT_EQ(gs.size(), ga.size());
  ASSERT_EQ(gs.size(), gf.size());
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], ga[i], 1e-10) << "param " << i;
    EXPECT_NEAR(gs[i], gf[i], 1e-5) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineAgreement,
    ::testing::Values(AgreementCase{2, 3, CostKind::kGlobalZero, 1},
                      AgreementCase{2, 3, CostKind::kLocalZero, 2},
                      AgreementCase{2, 3, CostKind::kPauliZZ, 3},
                      AgreementCase{3, 5, CostKind::kGlobalZero, 4},
                      AgreementCase{3, 5, CostKind::kPauliZZ, 5},
                      AgreementCase{4, 4, CostKind::kGlobalZero, 6},
                      AgreementCase{4, 4, CostKind::kLocalZero, 7},
                      AgreementCase{5, 2, CostKind::kGlobalZero, 8},
                      AgreementCase{6, 3, CostKind::kLocalZero, 9}));

// The gradient of the zero-initialized (identity) training circuit under
// the global cost vanishes at theta = 0 — the cost is at its minimum.
class ZeroPointGradient : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZeroPointGradient, VanishesAtIdentity) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(GetParam(), options);
  const GlobalZeroObservable obs(GetParam());
  const AdjointEngine engine;
  const std::vector<double> zeros(c.num_parameters(), 0.0);
  for (const double g : engine.gradient(c, obs, zeros)) {
    EXPECT_NEAR(g, 0.0, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ZeroPointGradient,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace qbarren
