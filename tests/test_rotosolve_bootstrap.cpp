// Tests for Rotosolve and the bootstrap / positional variance extensions.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/opt/rotosolve.hpp"

namespace qbarren {
namespace {

// --- Rotosolve ---------------------------------------------------------------

CostFunction small_cost(std::size_t qubits, std::size_t layers) {
  TrainingAnsatzOptions options;
  options.layers = layers;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(qubits, options));
  return make_identity_cost(circuit);
}

TEST(Rotosolve, SingleParameterFindsExactMinimum) {
  // C(theta) = sin^2(theta/2): minimum 0 at theta = 0 (mod 4 pi). One
  // sweep must land exactly on a minimum.
  auto circuit = std::make_shared<Circuit>(1);
  (void)circuit->add_rotation(gates::Axis::kY, 0);
  const CostFunction cost =
      make_identity_cost(std::shared_ptr<const Circuit>(circuit));
  RotosolveOptions options;
  options.max_sweeps = 1;
  const TrainResult result =
      train_rotosolve(cost, std::vector<double>{2.1}, options);
  EXPECT_NEAR(result.final_loss, 0.0, 1e-12);
}

TEST(Rotosolve, MonotonicallyNonIncreasingPerSweep) {
  const CostFunction cost = small_cost(3, 2);
  RotosolveOptions options;
  options.max_sweeps = 6;
  const std::vector<double> init(cost.num_parameters(), 0.7);
  const TrainResult result = train_rotosolve(cost, init, options);
  for (std::size_t i = 1; i < result.loss_history.size(); ++i) {
    EXPECT_LE(result.loss_history[i], result.loss_history[i - 1] + 1e-12);
  }
  EXPECT_LT(result.final_loss, 0.05);
}

TEST(Rotosolve, ConvergesWithoutLearningRate) {
  const CostFunction cost = small_cost(4, 2);
  RotosolveOptions options;
  options.max_sweeps = 8;
  const std::vector<double> init(cost.num_parameters(), 0.5);
  const TrainResult result = train_rotosolve(cost, init, options);
  EXPECT_LT(result.final_loss, 1e-3);
}

TEST(Rotosolve, EarlyStopOnSmallImprovement) {
  const CostFunction cost = small_cost(2, 1);
  RotosolveOptions options;
  options.max_sweeps = 50;
  options.min_improvement = 1e-6;
  const std::vector<double> init(cost.num_parameters(), 0.3);
  const TrainResult result = train_rotosolve(cost, init, options);
  EXPECT_LT(result.iterations, 50u);
}

TEST(Rotosolve, Validation) {
  const CostFunction cost = small_cost(2, 1);
  EXPECT_THROW((void)train_rotosolve(cost, {0.1}), InvalidArgument);
  RotosolveOptions bad;
  bad.min_improvement = -1.0;
  const std::vector<double> init(cost.num_parameters(), 0.1);
  EXPECT_THROW((void)train_rotosolve(cost, init, bad), InvalidArgument);
}

TEST(Rotosolve, EscapesPlateauWhereGdStalls) {
  // Rotosolve jumps to each parameter's conditional optimum regardless of
  // gradient magnitude, so a randomly initialized circuit that pins GD
  // still trains.
  const CostFunction cost = small_cost(6, 3);
  const auto random = make_initializer("random");
  Rng rng(7);
  const auto init = random->initialize(cost.circuit(), rng);

  RotosolveOptions options;
  options.max_sweeps = 5;
  const TrainResult result = train_rotosolve(cost, init, options);
  EXPECT_GT(result.initial_loss, 0.7);
  EXPECT_LT(result.final_loss, 0.1);
}

// --- bootstrap CI --------------------------------------------------------------

VarianceResult run_with_samples() {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 6};
  options.circuits_per_point = 40;
  options.layers = 15;
  options.keep_samples = true;
  const auto random = make_initializer("random");
  return VarianceExperiment(options).run({random.get()});
}

TEST(BootstrapCi, BracketsPointEstimate) {
  const VarianceResult result = run_with_samples();
  const SlopeConfidenceInterval ci =
      bootstrap_decay_ci(result.series[0], 200, 0.95, 5);
  EXPECT_LT(ci.lower, ci.upper);
  EXPECT_GE(ci.point, ci.lower - 0.5);
  EXPECT_LE(ci.point, ci.upper + 0.5);
  // The BP slope is decisively negative: the whole interval is below 0.
  EXPECT_LT(ci.upper, 0.0);
}

TEST(BootstrapCi, HigherConfidenceWidensInterval) {
  const VarianceResult result = run_with_samples();
  const SlopeConfidenceInterval narrow =
      bootstrap_decay_ci(result.series[0], 300, 0.5, 5);
  const SlopeConfidenceInterval wide =
      bootstrap_decay_ci(result.series[0], 300, 0.99, 5);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(BootstrapCi, RequiresRetainedSamples) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 10;
  options.layers = 5;
  const auto random = make_initializer("random");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get()});
  EXPECT_THROW((void)bootstrap_decay_ci(result.series[0]), InvalidArgument);
}

TEST(BootstrapCi, ParameterValidation) {
  const VarianceResult result = run_with_samples();
  EXPECT_THROW((void)bootstrap_decay_ci(result.series[0], 5),
               InvalidArgument);
  EXPECT_THROW((void)bootstrap_decay_ci(result.series[0], 100, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)bootstrap_decay_ci(result.series[0], 100, 0.0),
               InvalidArgument);
}

TEST(BootstrapCi, DeterministicGivenSeed) {
  const VarianceResult result = run_with_samples();
  const SlopeConfidenceInterval a =
      bootstrap_decay_ci(result.series[0], 100, 0.9, 7);
  const SlopeConfidenceInterval b =
      bootstrap_decay_ci(result.series[0], 100, 0.9, 7);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

// --- positional variance --------------------------------------------------------

TEST(PositionalVariance, ShapesAndValidation) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 10;
  options.layers = 5;
  const auto random = make_initializer("random");
  const PositionalVarianceResult result =
      positional_variance(options, *random, {0.0, 1.0});
  ASSERT_EQ(result.fractions.size(), 2u);
  ASSERT_EQ(result.variances.size(), 2u);
  ASSERT_EQ(result.variances[0].size(), 2u);
  for (const auto& row : result.variances) {
    for (const double v : row) {
      EXPECT_GT(v, 0.0);
    }
  }

  EXPECT_THROW((void)positional_variance(options, *random, {}),
               InvalidArgument);
  EXPECT_THROW((void)positional_variance(options, *random, {1.5}),
               InvalidArgument);
}

TEST(PositionalVariance, GlobalCostIsPositionInsensitiveAtDepth) {
  // For the global cost in the 2-design regime, McClean et al.'s variance
  // is position-independent to leading order: first and last parameter
  // variances agree within a small factor.
  VarianceExperimentOptions options;
  options.qubit_counts = {5};
  options.circuits_per_point = 80;
  options.layers = 25;
  const auto random = make_initializer("random");
  const PositionalVarianceResult result =
      positional_variance(options, *random, {0.0, 1.0});
  const double first = result.variances[0][0];
  const double last = result.variances[1][0];
  EXPECT_LT(first / last, 5.0);
  EXPECT_GT(first / last, 0.2);
}

TEST(PositionalVariance, TableShape) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2};
  options.circuits_per_point = 8;
  options.layers = 4;
  const auto random = make_initializer("random");
  const PositionalVarianceResult result =
      positional_variance(options, *random, {0.0, 0.5, 1.0});
  const Table table = result.table();
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 2u);
}

}  // namespace
}  // namespace qbarren
