// Tests for the density-matrix simulator: agreement with the state-vector
// path on unitary circuits, channel properties, and mixed-state readout.
#include "qbarren/dsim/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/rng.hpp"
#include "qbarren/dsim/channels.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-11;

TEST(DensityMatrix, StartsPureZero) {
  const DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.probability(0), 1.0, kTol);
  EXPECT_THROW(DensityMatrix(0), InvalidArgument);
  EXPECT_THROW(DensityMatrix(11), InvalidArgument);
}

TEST(DensityMatrix, PureFromStateVector) {
  StateVector psi(2);
  psi.apply_single_qubit(gates::hadamard(), 0);
  const DensityMatrix rho = DensityMatrix::pure(psi);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.probability(0), 0.5, kTol);
  EXPECT_NEAR(rho.probability(1), 0.5, kTol);
  EXPECT_NEAR(rho.element(0, 1).real(), 0.5, kTol);  // coherence present
}

TEST(DensityMatrix, MaximallyMixed) {
  const DensityMatrix rho = DensityMatrix::maximally_mixed(3);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0 / 8.0, kTol);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(rho.probability(i), 1.0 / 8.0, kTol);
  }
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector) {
  Rng rng(1);
  StateVector psi(3);
  DensityMatrix rho(3);
  for (int step = 0; step < 25; ++step) {
    const std::size_t q = rng.index(3);
    switch (rng.index(3)) {
      case 0: {
        const auto u = gates::rotation(
            static_cast<gates::Axis>(rng.index(3)), rng.uniform(0.0, 6.0));
        psi.apply_single_qubit(u, q);
        rho.apply_unitary_1q(u, q);
        break;
      }
      case 1: {
        std::size_t p = (q + 1) % 3;
        psi.apply_cz(q, p);
        rho.apply_cz(q, p);
        break;
      }
      case 2: {
        std::size_t p = (q + 1) % 3;
        const auto u = gates::cnot();
        psi.apply_controlled(gates::pauli_x(), q, p);
        rho.apply_unitary_2q(u, q, p);
        break;
      }
    }
  }
  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(rho.probability(i), psi.probability(i), 1e-9) << i;
  }
  // Full matrix check: rho = |psi><psi|.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const Complex expected = psi.amplitude(r) * std::conj(psi.amplitude(c));
      EXPECT_NEAR(std::abs(rho.element(r, c) - expected), 0.0, 1e-9);
    }
  }
}

TEST(DensityMatrix, ExpectationMatchesStateVectorOnPureStates) {
  StateVector psi(2);
  psi.apply_single_qubit(gates::u3(0.9, 0.4, -0.2), 0);
  psi.apply_controlled(gates::pauli_x(), 0, 1);
  const DensityMatrix rho = DensityMatrix::pure(psi);

  const GlobalZeroObservable global(2);
  const LocalZeroObservable local(2);
  const PauliStringObservable zz("ZZ");
  EXPECT_NEAR(rho.expectation(global), global.expectation(psi), 1e-10);
  EXPECT_NEAR(rho.expectation(local), local.expectation(psi), 1e-10);
  EXPECT_NEAR(rho.expectation(zz), zz.expectation(psi), 1e-10);
}

TEST(DensityMatrix, ValidationErrors) {
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_unitary_1q(gates::cz(), 0), InvalidArgument);
  EXPECT_THROW(rho.apply_unitary_1q(gates::pauli_x(), 2), InvalidArgument);
  EXPECT_THROW(rho.apply_unitary_2q(gates::cz(), 0, 0), InvalidArgument);
  EXPECT_THROW(rho.apply_cz(0, 0), InvalidArgument);
  EXPECT_THROW((void)rho.probability(4), InvalidArgument);
  EXPECT_THROW((void)rho.element(4, 0), InvalidArgument);
  const GlobalZeroObservable wrong(3);
  EXPECT_THROW((void)rho.expectation(wrong), InvalidArgument);
}

TEST(Channels, FactoriesValidateProbabilities) {
  EXPECT_THROW((void)channels::depolarizing(-0.1), InvalidArgument);
  EXPECT_THROW((void)channels::bit_flip(1.1), InvalidArgument);
  EXPECT_NO_THROW((void)channels::depolarizing(0.0));
  EXPECT_NO_THROW((void)channels::depolarizing_2q(1.0));
}

TEST(Channels, KrausCompletenessEnforced) {
  // A non-CPTP operator set must be rejected.
  std::vector<ComplexMatrix> bad{gates::pauli_x()};
  EXPECT_NO_THROW(KrausChannel{bad});  // X alone is unitary: fine
  bad.push_back(gates::pauli_z());     // X + Z: sum K^dag K = 2I
  EXPECT_THROW(KrausChannel{bad}, InvalidArgument);
}

TEST(Channels, DepolarizingShrinksBlochVector) {
  // Depolarizing with probability p maps <Z> -> (1 - 4p/3) <Z>.
  const double p = 0.3;
  DensityMatrix rho(1);  // |0><0|, <Z> = 1
  rho.apply_channel_1q(channels::depolarizing(p), 0);
  const PauliStringObservable z("Z");
  EXPECT_NEAR(rho.expectation(z), 1.0 - 4.0 * p / 3.0, kTol);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.hermiticity_error(), 0.0, kTol);
}

TEST(Channels, FullDepolarizingAlmostMixes) {
  // p = 3/4 sends any single-qubit state to the maximally mixed state.
  DensityMatrix rho(1);
  rho.apply_unitary_1q(gates::u3(1.1, 0.3, 0.7), 0);
  rho.apply_channel_1q(channels::depolarizing(0.75), 0);
  EXPECT_NEAR(rho.probability(0), 0.5, kTol);
  EXPECT_NEAR(rho.probability(1), 0.5, kTol);
  EXPECT_NEAR(rho.purity(), 0.5, kTol);
}

TEST(Channels, BitFlipMixesPopulations) {
  DensityMatrix rho(1);
  rho.apply_channel_1q(channels::bit_flip(0.25), 0);
  EXPECT_NEAR(rho.probability(0), 0.75, kTol);
  EXPECT_NEAR(rho.probability(1), 0.25, kTol);
}

TEST(Channels, PhaseFlipKillsCoherenceOnly) {
  StateVector plus(1);
  plus.apply_single_qubit(gates::hadamard(), 0);
  DensityMatrix rho = DensityMatrix::pure(plus);
  rho.apply_channel_1q(channels::phase_flip(0.5), 0);
  // Populations untouched, off-diagonal fully destroyed at p = 1/2.
  EXPECT_NEAR(rho.probability(0), 0.5, kTol);
  EXPECT_NEAR(rho.probability(1), 0.5, kTol);
  EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, kTol);
}

TEST(Channels, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.apply_unitary_1q(gates::pauli_x(), 0);  // |1><1|
  const double gamma = 0.4;
  rho.apply_channel_1q(channels::amplitude_damping(gamma), 0);
  EXPECT_NEAR(rho.probability(1), 1.0 - gamma, kTol);
  EXPECT_NEAR(rho.probability(0), gamma, kTol);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
}

TEST(Channels, AmplitudeDampingFixesGroundState) {
  DensityMatrix rho(1);  // already |0><0|
  rho.apply_channel_1q(channels::amplitude_damping(0.9), 0);
  EXPECT_NEAR(rho.probability(0), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
}

TEST(Channels, PhaseDampingPreservesPopulations) {
  StateVector plus(1);
  plus.apply_single_qubit(gates::hadamard(), 0);
  DensityMatrix rho = DensityMatrix::pure(plus);
  rho.apply_channel_1q(channels::phase_damping(0.6), 0);
  EXPECT_NEAR(rho.probability(0), 0.5, kTol);
  EXPECT_NEAR(rho.probability(1), 0.5, kTol);
  EXPECT_LT(std::abs(rho.element(0, 1)), 0.5);
  EXPECT_GT(std::abs(rho.element(0, 1)), 0.0);
}

TEST(Channels, TwoQubitDepolarizingTraceAndMixing) {
  StateVector bell(2);
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_controlled(gates::pauli_x(), 0, 1);
  DensityMatrix rho = DensityMatrix::pure(bell);
  rho.apply_channel_2q(channels::depolarizing_2q(0.5), 0, 1);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_LT(rho.purity(), 1.0);
  EXPECT_NEAR(rho.hermiticity_error(), 0.0, 1e-10);
  // Full two-qubit depolarizing (p=1, 15/15 weight) maps to I/4... at
  // p = 1 the channel is (0)*rho + (1/15) sum_{P != II} P rho P, which for
  // the Bell state still mixes heavily:
  DensityMatrix rho2 = DensityMatrix::pure(bell);
  rho2.apply_channel_2q(channels::depolarizing_2q(1.0), 0, 1);
  EXPECT_NEAR(rho2.trace(), 1.0, 1e-10);
}

TEST(Channels, ChannelWidthValidated) {
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_channel_1q(channels::depolarizing_2q(0.1), 0),
               InvalidArgument);
  EXPECT_THROW(rho.apply_channel_2q(channels::depolarizing(0.1), 0, 1),
               InvalidArgument);
}

// Property sweep: every factory channel is trace-preserving and maps
// Hermitian states to Hermitian states across probabilities.
class ChannelProperties : public ::testing::TestWithParam<double> {};

TEST_P(ChannelProperties, TracePreservingAndHermitian) {
  const double p = GetParam();
  StateVector psi(2);
  psi.apply_single_qubit(gates::u3(0.8, 1.1, -0.3), 0);
  psi.apply_controlled(gates::pauli_x(), 0, 1);

  for (const auto& channel :
       {channels::depolarizing(p), channels::bit_flip(p),
        channels::phase_flip(p), channels::amplitude_damping(p),
        channels::phase_damping(p)}) {
    DensityMatrix rho = DensityMatrix::pure(psi);
    rho.apply_channel_1q(channel, 1);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10) << channel.name();
    EXPECT_NEAR(rho.hermiticity_error(), 0.0, 1e-10) << channel.name();
    EXPECT_LE(rho.purity(), 1.0 + 1e-10) << channel.name();
  }

  DensityMatrix rho = DensityMatrix::pure(psi);
  rho.apply_channel_2q(channels::depolarizing_2q(p), 0, 1);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_NEAR(rho.hermiticity_error(), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ChannelProperties,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace qbarren
