// Serve-layer tests: wire protocol round-trips, the in-process worker
// loop, and end-to-end service runs against real forked worker processes
// (crash recovery, hard-kill watchdog, cache dedupe, budgets), including
// the PR's acceptance criterion — a worker SIGKILLed mid-cell must not
// change a single byte of the final result relative to a serial
// in-process run.
//
// Process-spawning tests need the qbarren_cli binary (workers are
// `qbarren_cli worker`); they skip when the build does not provide
// QBARREN_CLI_BIN (examples disabled).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "qbarren/bp/serialize.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/exit_codes.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/serve/protocol.hpp"
#include "qbarren/serve/server.hpp"
#include "qbarren/serve/service.hpp"
#include "qbarren/serve/worker.hpp"

namespace qbarren::serve {
namespace {

RequestSpec small_variance_spec() {
  RequestSpec spec;
  spec.id = "test";
  spec.kind = SpecKind::kVariance;
  spec.variance.qubit_counts = {2, 3};
  spec.variance.circuits_per_point = 6;
  spec.variance.layers = 3;
  spec.variance.seed = 11;
  return spec;
}

RequestSpec small_training_spec() {
  RequestSpec spec;
  spec.id = "test-train";
  spec.kind = SpecKind::kTraining;
  spec.training.qubits = 3;
  spec.training.layers = 2;
  spec.training.iterations = 4;
  spec.training.seed = 7;
  return spec;
}

std::string serial_dump(const RequestSpec& spec) {
  if (spec.kind == SpecKind::kVariance) {
    return to_json(VarianceExperiment(spec.variance)
                       .run_paper_set(FanMode::kLayerTensor))
        .dump();
  }
  return to_json(TrainingExperiment(spec.training)
                     .run_paper_set(FanMode::kLayerTensor))
      .dump();
}

// --- protocol ---------------------------------------------------------------

TEST(ServeProtocol, SpecKindNamesRoundTrip) {
  EXPECT_EQ(spec_kind_from_name("variance"), SpecKind::kVariance);
  EXPECT_EQ(spec_kind_from_name("training"), SpecKind::kTraining);
  EXPECT_STREQ(spec_kind_name(SpecKind::kTraining), "training");
  EXPECT_THROW((void)spec_kind_from_name("sweep"), NotFound);
}

TEST(ServeProtocol, RequestRoundTrips) {
  RequestSpec spec = small_variance_spec();
  spec.max_cell_failures = 2;
  spec.max_cell_attempts = 3;
  spec.deadline_seconds = 60.0;
  const RequestSpec parsed = request_from_json(to_json(spec));
  EXPECT_EQ(parsed.id, spec.id);
  EXPECT_EQ(parsed.kind, spec.kind);
  EXPECT_EQ(parsed.max_cell_failures, 2u);
  EXPECT_EQ(parsed.max_cell_attempts, 3u);
  EXPECT_DOUBLE_EQ(parsed.deadline_seconds, 60.0);
  EXPECT_EQ(options_fingerprint(parsed.variance),
            options_fingerprint(spec.variance));

  RequestSpec training = small_training_spec();
  const RequestSpec parsed_training = request_from_json(to_json(training));
  EXPECT_EQ(options_fingerprint(parsed_training.training),
            options_fingerprint(training.training));
}

TEST(ServeProtocol, UnknownKeysRejected) {
  JsonValue request = to_json(small_variance_spec());
  request.set("tyop", 1.0);
  EXPECT_THROW((void)request_from_json(request), InvalidArgument);

  JsonValue bad_options = JsonValue::object();
  bad_options.set("layerz", static_cast<std::int64_t>(3));
  JsonValue nested = JsonValue::object();
  nested.set("id", "x");
  nested.set("kind", "variance");
  nested.set("options", bad_options);
  EXPECT_THROW((void)request_from_json(nested), InvalidArgument);
}

TEST(ServeProtocol, EnumerateCellsMatchesRunnerKeys) {
  const RequestSpec spec = small_variance_spec();
  const std::vector<CellJob> cells = enumerate_cells(spec);
  const std::vector<std::string> inits = paper_initializer_names();
  ASSERT_EQ(cells.size(), 2 * inits.size());
  EXPECT_EQ(cells.front().key, "q=2/init=" + inits.front());
  EXPECT_EQ(cells.back().key, "q=3/init=" + inits.back());
  // The runner's checkpoint keys are "q=<q>/init=<name>": restoring a
  // serve-assembled store must hit every one of them (covered end to end
  // in the e2e tests; here we pin the key format).
  const std::vector<CellJob> training_cells =
      enumerate_cells(small_training_spec());
  ASSERT_EQ(training_cells.size(), inits.size());
  EXPECT_EQ(training_cells.front().key, "init=" + inits.front());
}

TEST(ServeProtocol, WorkerMessagesRoundTrip) {
  WorkerJob job;
  job.job_id = 42;
  job.kind = SpecKind::kVariance;
  job.options = variance_options_to_json(small_variance_spec().variance);
  job.cell = CellJob{"q=3/init=random", 1, 0};
  job.engine_attempt = 2;
  const WorkerJob parsed = worker_job_from_json(to_json(job));
  EXPECT_EQ(parsed.job_id, 42u);
  EXPECT_EQ(parsed.cell.key, "q=3/init=random");
  EXPECT_EQ(parsed.cell.qubit_index, 1u);
  EXPECT_EQ(parsed.engine_attempt, 2u);

  WorkerReply reply;
  reply.type = WorkerReply::Type::kFail;
  reply.job_id = 42;
  reply.cell_key = "q=3/init=random";
  reply.error = cell_error_class_name(CellErrorClass::kNonFinite);
  reply.message = "gradient is not finite";
  const WorkerReply parsed_reply = worker_reply_from_json(to_json(reply));
  EXPECT_EQ(parsed_reply.type, WorkerReply::Type::kFail);
  EXPECT_EQ(parsed_reply.error, "non-finite");
  EXPECT_EQ(parsed_reply.message, "gradient is not finite");
}

// --- in-process worker loop -------------------------------------------------

TEST(ServeWorker, ComputesCellOverPipes) {
  int job_pipe[2];
  int reply_pipe[2];
  ASSERT_EQ(::pipe(job_pipe), 0);
  ASSERT_EQ(::pipe(reply_pipe), 0);

  const RequestSpec spec = small_variance_spec();
  WorkerJob job;
  job.job_id = 7;
  job.kind = spec.kind;
  job.options = variance_options_to_json(spec.variance);
  job.cell = enumerate_cells(spec).front();
  const std::string line = ndjson_line(to_json(job));
  ASSERT_EQ(::write(job_pipe[1], line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  ::close(job_pipe[1]);  // EOF after the one job -> worker loop exits

  std::thread worker([&] {
    EXPECT_EQ(worker_main(job_pipe[0], reply_pipe[1]), kExitOk);
  });
  std::string output;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::read(reply_pipe[0], buffer, sizeof(buffer));
    if (n <= 0) break;
    output.append(buffer, static_cast<std::size_t>(n));
  }
  worker.join();
  ::close(reply_pipe[0]);

  const std::size_t newline = output.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const WorkerReply start =
      worker_reply_from_json(parse_json(output.substr(0, newline)));
  EXPECT_EQ(start.type, WorkerReply::Type::kStart);
  EXPECT_EQ(start.job_id, 7u);
  const WorkerReply done = worker_reply_from_json(
      parse_json(output.substr(newline + 1)));
  ASSERT_EQ(done.type, WorkerReply::Type::kOk);

  // The payload must be the exact cell the in-process runner computes.
  const CheckpointCell cell = parse_cell_payload(done.payload);
  const auto initializers = paper_initializers(FanMode::kLayerTensor);
  const std::vector<double> expected = compute_variance_cell(
      spec.variance, 0, *initializers[0], 0, ParameterShiftEngine{});
  EXPECT_EQ(cell.vector("samples"), expected);
}

// --- end-to-end service runs ------------------------------------------------

#ifdef QBARREN_CLI_BIN

ServiceOptions cli_service_options() {
  ServiceOptions options;
  options.worker_argv = {QBARREN_CLI_BIN, "worker"};
  return options;
}

TEST(ServeService, KillMidCellIsByteIdenticalToSerialRun) {
  const RequestSpec spec = small_variance_spec();
  const std::string serial = serial_dump(spec);

  ServiceOptions options = cli_service_options();
  options.workers = 3;
  std::atomic<int> kills{0};
  options.kill_on_cell_start = [&kills](const std::string& key) {
    return key == "q=3/init=he" && kills.fetch_add(1) == 0;
  };
  ExperimentService service(std::move(options));

  std::vector<std::string> retried;
  const RequestOutcome outcome = service.run_request(
      spec, [&retried](const JsonValue& event) {
        if (event.at("event").as_string() == "cell" &&
            event.at("status").as_string() == "retry") {
          retried.push_back(event.at("cell").as_string());
        }
      });

  EXPECT_EQ(outcome.status, RequestOutcome::Status::kOk);
  EXPECT_EQ(outcome.exit_code, kExitOk);
  EXPECT_GE(outcome.worker_deaths, 1u);
  EXPECT_GE(outcome.retries, 1u);
  // The retry is visible in the streamed metadata...
  ASSERT_FALSE(retried.empty());
  EXPECT_EQ(retried.front(), "q=3/init=he");
  // ...and the result is byte-identical to the serial in-process run.
  EXPECT_EQ(outcome.result.dump(), serial);
}

TEST(ServeService, ByteIdenticalAtAnyShardCount) {
  const RequestSpec spec = small_variance_spec();
  const std::string serial = serial_dump(spec);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    ServiceOptions options = cli_service_options();
    options.workers = workers;
    ExperimentService service(std::move(options));
    const RequestOutcome outcome = service.run_request(spec);
    EXPECT_EQ(outcome.status, RequestOutcome::Status::kOk);
    EXPECT_EQ(outcome.result.dump(), serial)
        << "diverged at " << workers << " workers";
  }
}

TEST(ServeService, TrainingRequestMatchesSerialRun) {
  const RequestSpec spec = small_training_spec();
  ExperimentService service(cli_service_options());
  const RequestOutcome outcome = service.run_request(spec);
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kOk);
  EXPECT_EQ(outcome.result.dump(), serial_dump(spec));
}

TEST(ServeService, IdenticalCellsDedupeThroughCache) {
  const RequestSpec spec = small_variance_spec();
  ExperimentService service(cli_service_options());
  const RequestOutcome first = service.run_request(spec);
  ASSERT_EQ(first.status, RequestOutcome::Status::kOk);
  EXPECT_EQ(first.cached, 0u);
  EXPECT_EQ(first.computed, first.cells);

  RequestSpec again = spec;
  again.id = "test-2";  // id and control do not affect the cache key
  again.max_cell_failures = 5;
  const RequestOutcome second = service.run_request(again);
  EXPECT_EQ(second.status, RequestOutcome::Status::kOk);
  EXPECT_EQ(second.cached, second.cells);
  EXPECT_EQ(second.computed, 0u);
  EXPECT_EQ(second.result.dump(), first.result.dump());
}

TEST(ServeService, AdmissionRejectsBrokenSpecWithDiagnostics) {
  RequestSpec spec = small_variance_spec();
  // QB001 (error): with no entanglers the <Z0 Z1> observable's backward
  // light cone covers only q[0..1], so the sampled last parameter (a
  // rotation on the top qubit) is structurally dead — every gradient
  // sample would be exactly zero.
  spec.variance.entangle = false;
  spec.variance.cost = CostKind::kPauliZZ;
  ExperimentService service(cli_service_options());
  JsonValue rejection;
  const RequestOutcome outcome = service.run_request(
      spec, [&rejection](const JsonValue& event) {
        if (event.at("event").as_string() == "rejected") rejection = event;
      });
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kRejected);
  EXPECT_EQ(outcome.exit_code, kExitAdmissionRejected);
  ASSERT_TRUE(rejection.is_object());
  EXPECT_TRUE(rejection.at("findings").contains("diagnostics"));
  // Nothing was dispatched: the pool never started.
  EXPECT_TRUE(service.worker_pids().empty());
}

TEST(ServeService, AdmissionRejectsProvablyBarrenSpecBeforeAnyFork) {
  // QB011 (error): the closed-form variance model predicts ~2.9e-7 for
  // the q = 10 global-cost grid point — below bp_variance_floor, so the
  // run is provably barren and is refused statically, before any worker
  // process exists.
  RequestSpec spec = small_variance_spec();
  spec.variance.qubit_counts = {10};
  spec.variance.layers = 50;
  spec.variance.cost = CostKind::kGlobalZero;
  ExperimentService service(cli_service_options());
  JsonValue rejection;
  const RequestOutcome outcome = service.run_request(
      spec, [&rejection](const JsonValue& event) {
        if (event.at("event").as_string() == "rejected") rejection = event;
      });
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kRejected);
  EXPECT_EQ(outcome.exit_code, kExitAdmissionRejected);
  ASSERT_TRUE(rejection.is_object());
  bool saw_qb011_error = false;
  const JsonValue& diags = rejection.at("findings").at("diagnostics");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    saw_qb011_error = saw_qb011_error ||
                      (diags.at(i).at("code").as_string() == "QB011" &&
                       diags.at(i).at("severity").as_string() == "error");
  }
  EXPECT_TRUE(saw_qb011_error);
  EXPECT_TRUE(service.worker_pids().empty());
}

TEST(ServeService, NonFiniteRetryUsesFallbackEngine) {
  RequestSpec spec = small_variance_spec();
  spec.variance.gradient_engine = "nan-at:0:parameter-shift";
  spec.max_cell_attempts = 2;
  ServiceOptions options = cli_service_options();
  options.workers = 1;
  ExperimentService service(std::move(options));
  const RequestOutcome outcome = service.run_request(spec);
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kOk);
  EXPECT_GE(outcome.retries, 1u);
  EXPECT_TRUE(outcome.failures.empty());

  // The retried cell fell back to the clean parameter-shift engine, so
  // the series match an undecorated serial run exactly.
  RequestSpec clean = small_variance_spec();
  const JsonValue serial = to_json(
      VarianceExperiment(clean.variance).run_paper_set(FanMode::kLayerTensor));
  EXPECT_EQ(outcome.result.at("series").dump(),
            serial.at("series").dump());
}

TEST(ServeService, CellFailureBudgetAbortsRequest) {
  RequestSpec spec = small_variance_spec();
  spec.variance.gradient_engine = "nan-at:0:parameter-shift";
  spec.max_cell_attempts = 1;   // no non-finite retry
  spec.max_cell_failures = 0;   // fail fast
  ServiceOptions options = cli_service_options();
  options.workers = 1;
  ExperimentService service(std::move(options));
  const RequestOutcome outcome = service.run_request(spec);
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kFailed);
  EXPECT_EQ(outcome.exit_code, kExitFailure);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].error, CellErrorClass::kNonFinite);
  EXPECT_TRUE(outcome.result.is_null());
}

TEST(ServeService, CrashBudgetTripsThenServiceStillServes) {
  RequestSpec spec = small_variance_spec();
  spec.variance.gradient_engine = "crash-at:0:parameter-shift";
  ServiceOptions options = cli_service_options();
  options.workers = 1;
  options.max_crash_attempts = 5;   // cells keep retrying...
  options.max_worker_crashes = 2;   // ...but the request-wide budget trips
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.002;
  ExperimentService service(std::move(options));

  const RequestOutcome crashed = service.run_request(spec);
  EXPECT_EQ(crashed.status, RequestOutcome::Status::kCrashBudget);
  EXPECT_EQ(crashed.exit_code, kExitWorkerCrashBudget);
  EXPECT_GT(crashed.worker_deaths, 2u);

  // The service survives its own crash budget: a clean request on the
  // same instance completes normally.
  const RequestOutcome clean = service.run_request(small_variance_spec());
  EXPECT_EQ(clean.status, RequestOutcome::Status::kOk);
  EXPECT_EQ(clean.result.dump(), serial_dump(small_variance_spec()));
}

TEST(ServeService, WatchdogKillsHungWorker) {
  RequestSpec spec = small_variance_spec();
  spec.variance.qubit_counts = {2};  // 6 cells: keep the hang count low
  spec.variance.gradient_engine = "hang-at:0:parameter-shift";
  spec.max_cell_failures = 6;  // tolerate every killed cell
  ServiceOptions options = cli_service_options();
  options.workers = 1;
  options.worker_kill_seconds = 0.25;
  options.max_crash_attempts = 0;    // a killed cell fails terminally
  options.max_worker_crashes = 20;
  ExperimentService service(std::move(options));

  const RequestOutcome outcome = service.run_request(spec);
  // Every worker hangs on its first cell (the cached fault engine fires
  // once per process), the watchdog SIGKILLs it, and the cell is recorded
  // with the `killed` taxonomy kind.
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kOk);
  ASSERT_FALSE(outcome.failures.empty());
  for (const CellFailure& failure : outcome.failures) {
    EXPECT_EQ(failure.error, CellErrorClass::kKilled);
  }
  EXPECT_GE(outcome.worker_deaths, outcome.failures.size());
}

// --- socket server ----------------------------------------------------------

TEST(ServeServer, BackpressureRejectsAndDrainReturnsInterrupted) {
  const std::string socket_path =
      testing::TempDir() + "qbarren-serve-test.sock";
  ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.max_pending = 0;  // only the active request is admitted
  SocketServer server(cli_service_options(), std::move(server_options));
  int server_exit = -1;
  std::thread server_thread([&] { server_exit = server.run(); });

  const auto connect_client = [&socket_path]() {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    for (int tries = 0; tries < 100; ++tries) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0 && ::connect(fd, reinterpret_cast<sockaddr*>(&address),
                               sizeof(address)) == 0) {
        return fd;
      }
      if (fd >= 0) ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return -1;
  };

  // Client A occupies the service (it never sends its request line).
  const int blocker = connect_client();
  ASSERT_GE(blocker, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Client B must be rejected with a backpressure event, immediately.
  const int rejected = connect_client();
  ASSERT_GE(rejected, 0);
  std::string response;
  char ch = 0;
  while (::read(rejected, &ch, 1) == 1 && ch != '\n') response.push_back(ch);
  ::close(rejected);
  const JsonValue event = parse_json(response);
  EXPECT_EQ(event.at("event").as_string(), "rejected");
  EXPECT_EQ(event.at("reason").as_string(), "backpressure");
  EXPECT_EQ(event.at("exit_code").as_integer(), kExitAdmissionRejected);

  ::close(blocker);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(::getpid(), SIGTERM);  // graceful drain
  server_thread.join();
  EXPECT_EQ(server_exit, kExitInterrupted);
}

#endif  // QBARREN_CLI_BIN

}  // namespace
}  // namespace qbarren::serve
