// Unit tests for Table rendering (ASCII / CSV / Markdown).
#include "qbarren/common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "qbarren/common/error.hpp"

namespace qbarren {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

TEST(Table, AddRowChecksColumnCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PushBuildsRowsIncrementally) {
  Table t({"name", "value"});
  t.begin_row();
  t.push(std::string("x"));
  t.push(1.5, 2);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.data()[0][1], "1.50");
}

TEST(Table, PushWithoutBeginRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.push(std::string("x")), InvalidArgument);
}

TEST(Table, DoubleBeginRowThrows) {
  Table t({"a", "b"});
  t.begin_row();
  t.push(std::string("1"));
  EXPECT_THROW(t.begin_row(), InvalidArgument);
}

TEST(Table, AddRowWhileRowOpenThrows) {
  Table t({"a", "b"});
  t.begin_row();
  t.push(std::string("1"));
  EXPECT_THROW(t.add_row({"x", "y"}), InvalidArgument);
}

TEST(Table, PushSciFormatsScientific) {
  Table t({"v"});
  t.begin_row();
  t.push_sci(0.000123, 2);
  EXPECT_EQ(t.data()[0][0], "1.23e-04");
}

TEST(Table, PushIntegerTypes) {
  Table t({"a", "b"});
  t.begin_row();
  t.push(std::size_t{42});
  t.push(static_cast<long long>(-7));
  EXPECT_EQ(t.data()[0][0], "42");
  EXPECT_EQ(t.data()[0][1], "-7");
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"x", "long-header"});
  t.add_row({"12345", "y"});
  const std::string ascii = t.to_ascii();
  // Header row, separator, one data row.
  EXPECT_NE(ascii.find("| x     | long-header |"), std::string::npos);
  EXPECT_NE(ascii.find("| 12345 | y           |"), std::string::npos);
  EXPECT_NE(ascii.find("|-------|-"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"q", "var"});
  t.add_row({"2", "0.1"});
  t.add_row({"4", "0.01"});
  EXPECT_EQ(t.to_csv(), "q,var\n2,0.1\n4,0.01\n");
}

TEST(Table, MarkdownRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.add_row({"a", "1"});
  const std::string path = ::testing::TempDir() + "/qbarren_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "k,v\na,1\n");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir-zz/x.csv"), Error);
}

TEST(FormatHelpers, FixedAndScientific) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_sci(12300.0, 3), "1.230e+04");
}

}  // namespace
}  // namespace qbarren
