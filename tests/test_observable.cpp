// Tests for the observable implementations: hand-computed expectations and
// consistency between expectation() and apply().
#include "qbarren/obs/observable.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/rng.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-12;

StateVector random_state(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> amps(std::size_t{1} << n);
  for (auto& a : amps) a = Complex{rng.normal(), rng.normal()};
  StateVector s(n, amps);
  s.normalize();
  return s;
}

TEST(GlobalZero, ZeroOnZeroState) {
  const GlobalZeroObservable obs(3);
  const StateVector s(3);
  EXPECT_NEAR(obs.expectation(s), 0.0, kTol);
}

TEST(GlobalZero, OneOnOrthogonalState) {
  const GlobalZeroObservable obs(2);
  StateVector s(2);
  s.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(obs.expectation(s), 1.0, kTol);
}

TEST(GlobalZero, HalfOnEqualSuperpositionOfOneQubit) {
  const GlobalZeroObservable obs(1);
  StateVector s(1);
  s.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(obs.expectation(s), 0.5, kTol);
}

TEST(GlobalZero, ApplyZeroesFirstAmplitude) {
  const GlobalZeroObservable obs(2);
  const StateVector s = random_state(2, 3);
  const StateVector hs = obs.apply(s);
  EXPECT_EQ(hs.amplitude(0), (Complex{0.0, 0.0}));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(hs.amplitude(i), s.amplitude(i));
  }
}

TEST(GlobalZero, ExpectationConsistentWithApply) {
  const GlobalZeroObservable obs(3);
  const StateVector s = random_state(3, 5);
  EXPECT_NEAR(obs.expectation(s), s.inner_product(obs.apply(s)).real(),
              1e-11);
}

TEST(GlobalZero, BoundedInUnitInterval) {
  const GlobalZeroObservable obs(3);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const double v = obs.expectation(random_state(3, seed));
    EXPECT_GE(v, -kTol);
    EXPECT_LE(v, 1.0 + kTol);
  }
}

TEST(GlobalZero, WidthValidated) {
  const GlobalZeroObservable obs(2);
  const StateVector wrong(3);
  EXPECT_THROW((void)obs.expectation(wrong), InvalidArgument);
  EXPECT_THROW((void)obs.apply(wrong), InvalidArgument);
  EXPECT_THROW(GlobalZeroObservable(0), InvalidArgument);
}

TEST(LocalZero, ZeroOnZeroState) {
  const LocalZeroObservable obs(3);
  const StateVector s(3);
  EXPECT_NEAR(obs.expectation(s), 0.0, kTol);
}

TEST(LocalZero, OneOnAllOnesState) {
  const LocalZeroObservable obs(3);
  StateVector s(3);
  for (std::size_t q = 0; q < 3; ++q) {
    s.apply_single_qubit(gates::pauli_x(), q);
  }
  EXPECT_NEAR(obs.expectation(s), 1.0, kTol);
}

TEST(LocalZero, FractionalOnPartialFlip) {
  // |001>: one of three qubits is |1> -> C = 1/3.
  const LocalZeroObservable obs(3);
  StateVector s(3);
  s.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(obs.expectation(s), 1.0 / 3.0, kTol);
}

TEST(LocalZero, ExpectationConsistentWithApply) {
  const LocalZeroObservable obs(3);
  const StateVector s = random_state(3, 7);
  EXPECT_NEAR(obs.expectation(s), s.inner_product(obs.apply(s)).real(),
              1e-11);
}

TEST(LocalZero, LessSensitiveThanGlobalOnSingleFlip) {
  // The local cost penalizes a single flipped qubit by 1/n, the global
  // cost by 1 — the structural reason local costs avoid barren plateaus.
  const std::size_t n = 4;
  StateVector s(n);
  s.apply_single_qubit(gates::pauli_x(), 2);
  const GlobalZeroObservable global(n);
  const LocalZeroObservable local(n);
  EXPECT_NEAR(global.expectation(s), 1.0, kTol);
  EXPECT_NEAR(local.expectation(s), 0.25, kTol);
}

TEST(PauliString, ValidationRules) {
  EXPECT_THROW(PauliStringObservable(""), InvalidArgument);
  EXPECT_THROW(PauliStringObservable("XA"), InvalidArgument);
  EXPECT_NO_THROW(PauliStringObservable("IXYZ"));
}

TEST(PauliString, ZExpectationOnBasisStates) {
  const PauliStringObservable z("Z");
  StateVector zero(1);
  EXPECT_NEAR(z.expectation(zero), 1.0, kTol);
  StateVector one(1);
  one.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(z.expectation(one), -1.0, kTol);
}

TEST(PauliString, XExpectationOnPlusState) {
  const PauliStringObservable x("X");
  StateVector plus(1);
  plus.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(x.expectation(plus), 1.0, kTol);
}

TEST(PauliString, YExpectationOnYEigenstate) {
  // |+i> = (|0> + i|1>)/sqrt(2) is the +1 eigenstate of Y.
  const PauliStringObservable y("Y");
  const double s = 1.0 / std::sqrt(2.0);
  const StateVector plus_i(1, {Complex{s, 0.0}, Complex{0.0, s}});
  EXPECT_NEAR(y.expectation(plus_i), 1.0, kTol);
}

TEST(PauliString, ZzOnBellState) {
  // (|00> + |11>)/sqrt(2) has <ZZ> = +1, <Z on either qubit> = 0.
  StateVector bell(2);
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_controlled(gates::pauli_x(), 0, 1);
  EXPECT_NEAR(PauliStringObservable("ZZ").expectation(bell), 1.0, kTol);
  EXPECT_NEAR(PauliStringObservable("ZI").expectation(bell), 0.0, kTol);
  EXPECT_NEAR(PauliStringObservable("IZ").expectation(bell), 0.0, kTol);
  EXPECT_NEAR(PauliStringObservable("XX").expectation(bell), 1.0, kTol);
}

TEST(PauliString, IdentityStringGivesNorm) {
  const PauliStringObservable id("II");
  const StateVector s = random_state(2, 11);
  EXPECT_NEAR(id.expectation(s), 1.0, 1e-11);
}

TEST(PauliString, ExpectationIsRealOnRandomStates) {
  const PauliStringObservable obs("XYZ");
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const StateVector s = random_state(3, seed);
    const Complex ip = s.inner_product(obs.apply(s));
    EXPECT_NEAR(ip.imag(), 0.0, 1e-11);  // Hermitian => real expectation
    EXPECT_GE(obs.expectation(s), -1.0 - kTol);
    EXPECT_LE(obs.expectation(s), 1.0 + kTol);
  }
}

TEST(PauliString, WidthValidated) {
  const PauliStringObservable obs("ZZ");
  const StateVector wrong(3);
  EXPECT_THROW((void)obs.apply(wrong), InvalidArgument);
}

TEST(MakeZObservable, PlacesZCorrectly) {
  const auto obs = make_z_observable(1, 3);
  EXPECT_EQ(obs->pauli_string(), "IZI");
  EXPECT_THROW((void)make_z_observable(3, 3), InvalidArgument);
}

TEST(ObservableNames, AreStable) {
  EXPECT_EQ(GlobalZeroObservable(2).name(), "global-zero");
  EXPECT_EQ(LocalZeroObservable(2).name(), "local-zero");
  EXPECT_EQ(PauliStringObservable("ZZ").name(), "pauli:ZZ");
}

}  // namespace
}  // namespace qbarren
