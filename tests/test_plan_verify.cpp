// Tests for the static plan verifier (analysis/plan_verify.hpp).
//
// Positive path: every paper ansatz at every paper width verifies clean —
// the exec-layer lowering is proven consistent, not assumed. Negative
// path: plans hand-corrupted in precisely one way through the test-only
// PlanMutationHook must trip exactly the QP1xx check that owns the broken
// invariant. Plus: the ScopedPlanVerification hook (counting, nesting,
// throwing, byte-identical execution) and the static resource estimate.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "qbarren/analysis/plan_verify.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/exec/plan_testing.hpp"

namespace qbarren {
namespace {

using exec::CompiledCircuit;
using exec::PlanMutationHook;

std::size_t count_code(const Diagnostics& diagnostics,
                       const std::string& code) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const Diagnostics& diagnostics, const std::string& code) {
  return count_code(diagnostics, code) > 0;
}

std::shared_ptr<CompiledCircuit> corruptible_plan(const Circuit& circuit) {
  return PlanMutationHook::mutable_copy(
      *CompiledCircuit::compile(circuit));
}

/// A circuit whose plan exercises every kernel family: a fused run (H, S
/// on q0), a standalone constant (X on q1), CZ, CNOT, SWAP, a rotation,
/// and a controlled rotation.
Circuit every_kernel_circuit() {
  Circuit circuit(3);
  circuit.add_hadamard(0);
  circuit.add_s(0);  // fuses with the H
  circuit.add_pauli_x(1);
  circuit.add_cz(0, 1);
  circuit.add_cnot(1, 2);
  circuit.add_swap(0, 2);
  circuit.add_rotation(gates::Axis::kY, 1);
  circuit.add_controlled_rotation(gates::Axis::kZ, 0, 2);
  return circuit;
}

// --- positive path: the paper's circuits verify clean ------------------------

TEST(PlanVerify, PaperAnsaetzeVerifyCleanAtEveryPaperWidth) {
  for (const std::size_t n : {2u, 4u, 6u, 8u, 10u}) {
    Rng rng(3);
    VarianceAnsatzOptions eq2_options;
    eq2_options.layers = 6;
    const Circuit eq2 = variance_ansatz(n, rng, eq2_options);
    EXPECT_TRUE(verify_circuit_lowering(eq2).empty()) << "variance n=" << n;

    const Circuit eq3 = training_ansatz(n, {});
    EXPECT_TRUE(verify_circuit_lowering(eq3).empty()) << "training n=" << n;

    const Circuit fig1 = motivational_ansatz(n, 100);
    EXPECT_TRUE(verify_circuit_lowering(fig1).empty())
        << "motivational n=" << n;
  }
}

TEST(PlanVerify, EveryKernelFamilyVerifiesClean) {
  const Circuit circuit = every_kernel_circuit();
  const auto plan = CompiledCircuit::compile(circuit);
  EXPECT_GT(plan->stats().fused_runs, 0u);  // the fixture must exercise fusion
  EXPECT_TRUE(verify_plan(circuit, *plan).empty());
}

TEST(PlanVerify, UnfusedCompilationVerifiesClean) {
  const Circuit circuit = every_kernel_circuit();
  exec::CompileOptions options;
  options.fuse_single_qubit_runs = false;
  const auto plan = CompiledCircuit::compile(circuit, options);
  EXPECT_EQ(plan->stats().fused_runs, 0u);
  EXPECT_TRUE(verify_plan(circuit, *plan).empty());
}

// --- QP100: shape mismatches -------------------------------------------------

TEST(PlanVerify, QP100FiresOnEveryShapeMismatch) {
  const Circuit circuit = training_ansatz(2, {});
  const auto plan = corruptible_plan(circuit);
  PlanMutationHook::num_qubits(*plan) += 1;
  PlanMutationHook::num_params(*plan) += 1;
  const Diagnostics diags = verify_plan(circuit, *plan);
  EXPECT_GE(count_code(diags, "QP100"), 2u);
  EXPECT_TRUE(has_errors(diags));
}

// --- QP101: pool unitarity ---------------------------------------------------

TEST(PlanVerify, QP101FiresOnNonUnitaryPoolEntry) {
  Circuit circuit(1);
  circuit.add_hadamard(0);
  const auto plan = corruptible_plan(circuit);
  PlanMutationHook::pool2(*plan)[0].m00 *= 2.0;  // no longer unitary
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP101"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(PlanVerify, QP101IsAWarningWhenOnlyCustomGatesReference) {
  // A non-unitary (but correctly sized) custom gate compiles — both
  // execution paths apply it verbatim, so the plan is a faithful lowering
  // and QB006 owns the modeling problem. The verifier must warn, not error.
  ComplexMatrix scaled = ComplexMatrix::identity(2);
  scaled(0, 0) = 2.0;
  Circuit circuit(1);
  circuit.add_custom_gate("scaled", scaled, 0);
  const auto plan = CompiledCircuit::compile(circuit);
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP101"));
  EXPECT_FALSE(has_errors(diags));
}

// --- QP102: forward / inverse pairing ----------------------------------------

TEST(PlanVerify, QP102FiresOnBrokenInverseEntry) {
  Circuit circuit(1);
  circuit.add_hadamard(0);
  const auto plan = corruptible_plan(circuit);
  PlanMutationHook::pool2_inverse(*plan)[0].m01 += 0.5;
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP102"));
  EXPECT_TRUE(has_errors(diags));
  // Only the inverse is broken: the forward pool still matches the source.
  EXPECT_FALSE(has_code(diags, "QP105"));
}

TEST(PlanVerify, QP102FiresOnPoolSizeMismatch) {
  Circuit circuit(2);
  circuit.add_swap(0, 1);
  const auto plan = corruptible_plan(circuit);
  PlanMutationHook::pool4_inverse(*plan).clear();
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP102"));
}

// --- QP103: fusion legality --------------------------------------------------

TEST(PlanVerify, QP103FiresWhenAFusedElementIsReplaced) {
  Circuit circuit(1);
  circuit.add_hadamard(0);
  circuit.add_s(0);
  const auto plan = corruptible_plan(circuit);
  auto& fused = PlanMutationHook::fused(*plan);
  ASSERT_EQ(fused.size(), 2u);
  fused[1] = fused[0];  // run now applies H twice instead of H then S
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP103"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QP103"; });
  EXPECT_NE(it->message.find("deviates"), std::string::npos);
}

TEST(PlanVerify, QP103FiresOnDegenerateAndOutOfRangeRuns) {
  Circuit circuit(1);
  circuit.add_hadamard(0);
  circuit.add_s(0);

  const auto short_run = corruptible_plan(circuit);
  PlanMutationHook::plan_ops(*short_run)[0].fused_count = 1;
  EXPECT_TRUE(has_code(verify_plan(circuit, *short_run), "QP103"));

  const auto overflow = corruptible_plan(circuit);
  PlanMutationHook::plan_ops(*overflow)[0].fused_begin = 7;
  EXPECT_TRUE(has_code(verify_plan(circuit, *overflow), "QP103"));

  const auto bad_index = corruptible_plan(circuit);
  PlanMutationHook::fused(*bad_index)[0] = 99;  // pool2 has ~2 entries
  EXPECT_TRUE(has_code(verify_plan(circuit, *bad_index), "QP103"));
}

// --- QP104: binding table ----------------------------------------------------

TEST(PlanVerify, QP104FiresOnStaleSourceBinding) {
  const Circuit circuit = training_ansatz(2, {});
  const auto plan = corruptible_plan(circuit);
  auto& source_ops = PlanMutationHook::param_source_op(*plan);
  std::swap(source_ops[0], source_ops[1]);
  const Diagnostics diags = verify_plan(circuit, *plan);
  EXPECT_GE(count_code(diags, "QP104"), 2u);
  EXPECT_TRUE(has_errors(diags));
}

TEST(PlanVerify, QP104FiresOnStalePlanOpBinding) {
  const Circuit circuit = training_ansatz(2, {});
  const auto plan = corruptible_plan(circuit);
  auto& plan_ops = PlanMutationHook::param_plan_op(*plan);
  std::swap(plan_ops[0], plan_ops[1]);
  EXPECT_TRUE(has_code(verify_plan(circuit, *plan), "QP104"));
}

// --- QP105: kernel-op coverage -----------------------------------------------

TEST(PlanVerify, QP105FiresOnASwappedWire) {
  const Circuit circuit = training_ansatz(2, {});
  const auto plan = corruptible_plan(circuit);
  auto& ops = PlanMutationHook::plan_ops(*plan);
  const auto rotation = std::find_if(
      ops.begin(), ops.end(), [](const CompiledCircuit::PlanOp& op) {
        return op.kernel == CompiledCircuit::Kernel::kRotation;
      });
  ASSERT_NE(rotation, ops.end());
  rotation->qubit0 ^= 1u;  // rotate the wrong qubit
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP105"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QP105"; });
  EXPECT_NE(it->message.find("wrong target qubit"), std::string::npos);
}

TEST(PlanVerify, QP105FiresOnReorderedOrDroppedOps) {
  const Circuit circuit = every_kernel_circuit();

  const auto reordered = corruptible_plan(circuit);
  auto& ops = PlanMutationHook::plan_ops(*reordered);
  ASSERT_GE(ops.size(), 2u);
  std::swap(ops[0], ops[1]);
  EXPECT_TRUE(has_code(verify_plan(circuit, *reordered), "QP105"));

  const auto dropped = corruptible_plan(circuit);
  PlanMutationHook::plan_ops(*dropped).pop_back();
  const Diagnostics diags = verify_plan(circuit, *dropped);
  ASSERT_TRUE(has_code(diags, "QP105"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QP105"; });
  EXPECT_NE(it->message.find("never execute"), std::string::npos);
}

TEST(PlanVerify, QP105FiresOnACorruptedPooledMatrix) {
  Circuit circuit(1);
  circuit.add_pauli_x(0);
  const auto plan = corruptible_plan(circuit);
  // Replace Pauli-X with Pauli-Z: still unitary (QP101 stays silent), but
  // no longer the matrix the source op specifies.
  PlanMutationHook::pool2(*plan)[0] = gates::entries_of(gates::pauli_z());
  PlanMutationHook::pool2_inverse(*plan)[0] =
      gates::entries_of(gates::pauli_z());
  const Diagnostics diags = verify_plan(circuit, *plan);
  EXPECT_FALSE(has_code(diags, "QP101"));
  ASSERT_TRUE(has_code(diags, "QP105"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QP105"; });
  EXPECT_NE(it->message.find("differs from the source op's matrix"),
            std::string::npos);
}

// --- QP106: custom-gate fallback reachability --------------------------------

TEST(PlanVerify, QP106ErrorWhenAPlanCoversAMalformedCustomGate) {
  // compile() refuses malformed custom gates, so build the plan from a
  // well-formed twin and verify it against the malformed circuit: the
  // "impossible plan" the check exists to reject.
  Circuit valid(2);
  valid.add_custom_two_qubit_gate("twin", ComplexMatrix::identity(4), 0, 1);
  Circuit malformed(2);
  malformed.add_custom_two_qubit_gate("twin", ComplexMatrix::identity(3), 0,
                                      1);
  const auto plan = CompiledCircuit::compile(valid);
  const Diagnostics diags = verify_plan(malformed, *plan);
  ASSERT_TRUE(has_code(diags, "QP106"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(PlanVerify, QP106InfoWhenLoweringIsRefused) {
  Circuit circuit(1);
  circuit.add_custom_gate("bad-dims", ComplexMatrix(3, 3), 0);
  const Diagnostics diags = verify_circuit_lowering(circuit);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.front().code, "QP106");
  EXPECT_EQ(diags.front().severity, Severity::kInfo);
  EXPECT_NE(diags.front().message.find("interpreted fallback"),
            std::string::npos);
  EXPECT_FALSE(has_errors(diags));
}

// --- finding cap -------------------------------------------------------------

TEST(PlanVerify, PerCodeCapFoldsOverflowIntoASummary) {
  Circuit circuit(1);
  for (int i = 0; i < 12; ++i) circuit.add_hadamard(0);
  exec::CompileOptions no_fuse;
  no_fuse.fuse_single_qubit_runs = false;
  const auto plan = PlanMutationHook::mutable_copy(
      *CompiledCircuit::compile(circuit, no_fuse));
  for (auto& op : PlanMutationHook::plan_ops(*plan)) {
    op.qubit0 = 9;  // every op rotates a nonexistent wire
  }
  PlanVerifyOptions options;
  options.max_findings_per_code = 3;
  const Diagnostics diags = verify_plan(circuit, *plan, options);
  // 3 reported + 1 summary.
  ASSERT_EQ(count_code(diags, "QP105"), 4u);
  EXPECT_NE(diags.back().message.find("more QP105"), std::string::npos);
}

// --- PlanVerificationError ---------------------------------------------------

TEST(PlanVerificationErrorTest, CarriesDiagnosticsAndCountsErrors) {
  Diagnostics diagnostics = {
      {Severity::kError, "QP100", "shape", "num_qubits"},
      {Severity::kWarning, "QP101", "pool", "pool2[0]"}};
  const PlanVerificationError error("plan failed", std::move(diagnostics));
  EXPECT_NE(std::string(error.what()).find("1 error-severity"),
            std::string::npos);
  ASSERT_EQ(error.diagnostics().size(), 2u);
  EXPECT_EQ(error.diagnostics().front().code, "QP100");
}

// --- ScopedPlanVerification --------------------------------------------------

TEST(ScopedPlanVerificationTest, CountsFreshAttachmentsOnce) {
  const Circuit circuit = training_ansatz(2, {});
  ScopedPlanVerification guard;
  EXPECT_EQ(guard.plans_verified(), 0u);
  const auto first = exec::plan_for(circuit);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(guard.plans_verified(), 1u);
  EXPECT_EQ(guard.warnings(), 0u);
  // Cache hit: the already-attached plan must not re-verify.
  const auto second = exec::plan_for(circuit);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(guard.plans_verified(), 1u);
}

TEST(ScopedPlanVerificationTest, CountsWarningsWithoutThrowing) {
  ComplexMatrix scaled = ComplexMatrix::identity(2);
  scaled(0, 0) = 2.0;
  Circuit circuit(1);
  circuit.add_custom_gate("scaled", scaled, 0);
  ScopedPlanVerification guard;
  const auto plan = exec::plan_for(circuit);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(guard.plans_verified(), 1u);
  EXPECT_GE(guard.warnings(), 1u);
}

TEST(ScopedPlanVerificationTest, ThrowsOnErrorFindings) {
  // Impossible tolerances turn every pooled matrix into a finding: the
  // end-to-end path from plan_for through the attach hook to the thrown
  // PlanVerificationError, without needing a miscompiling compiler.
  Circuit circuit(1);
  circuit.add_hadamard(0);
  PlanVerifyOptions impossible;
  impossible.unitarity_tolerance = -1.0;
  ScopedPlanVerification guard(impossible);
  try {
    (void)exec::plan_for(circuit);
    FAIL() << "expected PlanVerificationError";
  } catch (const PlanVerificationError& error) {
    EXPECT_FALSE(error.diagnostics().empty());
    EXPECT_TRUE(has_code(error.diagnostics(), "QP101"));
  }
  EXPECT_EQ(guard.plans_verified(), 1u);
}

TEST(ScopedPlanVerificationTest, NestsAndRestoresThePreviousHook) {
  const Circuit outer_circuit = training_ansatz(2, {});
  const Circuit inner_circuit = training_ansatz(3, {});
  const Circuit after_circuit = training_ansatz(4, {});
  ScopedPlanVerification outer;
  {
    ScopedPlanVerification inner;
    (void)exec::plan_for(inner_circuit);
    EXPECT_EQ(inner.plans_verified(), 1u);
    EXPECT_EQ(outer.plans_verified(), 0u);  // inner shadows outer
  }
  // The inner guard restored the outer hook on destruction.
  (void)exec::plan_for(after_circuit);
  EXPECT_EQ(outer.plans_verified(), 1u);
  (void)outer_circuit;
}

TEST(ScopedPlanVerificationTest, VerifiedExecutionIsByteIdentical) {
  const Circuit circuit = every_kernel_circuit();
  const std::vector<double> params(circuit.num_parameters(), 0.3);
  (void)exec::plan_for(circuit);  // unverified compiled path
  const StateVector reference = circuit.simulate(params);
  const Circuit fresh = every_kernel_circuit();
  ScopedPlanVerification guard;
  (void)exec::plan_for(fresh);  // verified on attach
  const StateVector verified = fresh.simulate(params);
  EXPECT_GE(guard.plans_verified(), 1u);
  ASSERT_EQ(verified.amplitudes().size(), reference.amplitudes().size());
  for (std::size_t i = 0; i < reference.amplitudes().size(); ++i) {
    EXPECT_EQ(verified.amplitudes()[i], reference.amplitudes()[i]);
  }
}

// --- static resource estimate ------------------------------------------------

TEST(PlanResources, MatchesTheCostModelExactly) {
  // 2 qubits: amps = 4, pairs = 2, quads = 1.
  Circuit circuit(2);
  circuit.add_hadamard(0);       // kFixedSingle: 28*2 flops, 2*4*16 bytes
  circuit.add_rotation(gates::Axis::kY, 1);  // kRotation: same cost shape
  circuit.add_cz(0, 1);          // kCzGate: 2*1 flops, 2*1*16 bytes
  circuit.add_swap(0, 1);        // kFixedTwo: 120*1 flops, 2*4*16 bytes
  const auto plan = CompiledCircuit::compile(circuit);
  const PlanResourceEstimate estimate = estimate_plan_resources(*plan);
  EXPECT_EQ(estimate.plan_ops, 4u);
  EXPECT_EQ(estimate.fused_runs, 0u);
  EXPECT_DOUBLE_EQ(estimate.flops, 28.0 * 2 + 28.0 * 2 + 2.0 + 120.0);
  EXPECT_DOUBLE_EQ(estimate.bytes, 128.0 + 128.0 + 32.0 + 128.0);
}

TEST(PlanResources, FusionSavesBytesButNotFlops) {
  Circuit circuit(1);  // amps = 2, pairs = 1
  circuit.add_hadamard(0);
  circuit.add_s(0);
  const auto fused = CompiledCircuit::compile(circuit);
  const PlanResourceEstimate with_fusion = estimate_plan_resources(*fused);
  exec::CompileOptions no_fuse;
  no_fuse.fuse_single_qubit_runs = false;
  const auto unfused = CompiledCircuit::compile(circuit, no_fuse);
  const PlanResourceEstimate without = estimate_plan_resources(*unfused);
  EXPECT_DOUBLE_EQ(with_fusion.flops, without.flops);  // same arithmetic
  EXPECT_LT(with_fusion.bytes, without.bytes);  // one pass, not two
  EXPECT_EQ(with_fusion.fused_runs, 1u);
  EXPECT_EQ(with_fusion.plan_ops, 1u);
  EXPECT_EQ(without.plan_ops, 2u);
}

TEST(PlanResources, BatchScalesAmplitudeWorkButNotMatrixFetch) {
  const Circuit circuit = every_kernel_circuit();
  const auto plan = CompiledCircuit::compile(circuit);
  const PlanResourceEstimate serial = estimate_plan_resources(*plan);
  EXPECT_EQ(serial.batch, 1u);
  const PlanResourceEstimate batched = estimate_plan_resources(*plan, 8);
  EXPECT_EQ(batched.batch, 8u);
  // Per-lane amplitude work scales linearly with the batch...
  EXPECT_DOUBLE_EQ(batched.flops, 8.0 * serial.flops);
  EXPECT_DOUBLE_EQ(batched.bytes, 8.0 * serial.bytes);
  // ...while the per-dispatch matrix fetch does not: that amortization is
  // what batching buys.
  EXPECT_DOUBLE_EQ(batched.shared_bytes, serial.shared_bytes);
  EXPECT_GT(serial.shared_bytes, 0.0);
  EXPECT_EQ(batched.plan_ops, serial.plan_ops);
  EXPECT_THROW((void)estimate_plan_resources(*plan, 0), InvalidArgument);
}

TEST(PlanResources, SharedBytesFollowTheMatrixSizes) {
  // 2x2 entries are 64 bytes, 4x4 entries 256, CZ has no matrix.
  Circuit circuit(2);
  circuit.add_hadamard(0);  // 64
  circuit.add_rotation(gates::Axis::kY, 1);  // 64
  circuit.add_cz(0, 1);     // 0
  circuit.add_swap(0, 1);   // 256
  const auto plan = CompiledCircuit::compile(circuit);
  const PlanResourceEstimate estimate = estimate_plan_resources(*plan);
  EXPECT_DOUBLE_EQ(estimate.shared_bytes, 64.0 + 64.0 + 256.0);
}

// --- QP107: batched-dispatch slot table --------------------------------------

TEST(PlanVerify, QP107FiresWhenAParameterizedOpLosesItsSlot) {
  const Circuit circuit = every_kernel_circuit();
  auto plan = corruptible_plan(circuit);
  auto& slots = PlanMutationHook::rotation_slots(*plan);
  const auto it = std::find_if(
      slots.begin(), slots.end(), [](std::uint32_t s) {
        return s != CompiledCircuit::kNoBatchSlot;
      });
  ASSERT_NE(it, slots.end());
  *it = CompiledCircuit::kNoBatchSlot;  // the op's angles would never apply
  const Diagnostics diags = verify_plan(circuit, *plan);
  ASSERT_TRUE(has_code(diags, "QP107"));
}

TEST(PlanVerify, QP107FiresOnOutOfOrderOrNonDenseSlots) {
  const Circuit circuit = every_kernel_circuit();
  {
    // Swap the two parameterized ops' rows: each lane's angles land on the
    // wrong gate.
    auto plan = corruptible_plan(circuit);
    auto& slots = PlanMutationHook::rotation_slots(*plan);
    std::vector<std::size_t> assigned;
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] != CompiledCircuit::kNoBatchSlot) assigned.push_back(k);
    }
    ASSERT_GE(assigned.size(), 2u);
    std::swap(slots[assigned[0]], slots[assigned[1]]);
    EXPECT_TRUE(has_code(verify_plan(circuit, *plan), "QP107"));
  }
  {
    // A fixed gate claims an angle-table row it has no angle for.
    auto plan = corruptible_plan(circuit);
    auto& slots = PlanMutationHook::rotation_slots(*plan);
    std::size_t fixed = slots.size();
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] == CompiledCircuit::kNoBatchSlot) {
        fixed = k;
        break;
      }
    }
    ASSERT_LT(fixed, slots.size());
    slots[fixed] = 0;
    EXPECT_TRUE(has_code(verify_plan(circuit, *plan), "QP107"));
  }
  {
    // A truncated table cannot cover the op stream at all.
    auto plan = corruptible_plan(circuit);
    PlanMutationHook::rotation_slots(*plan).pop_back();
    EXPECT_TRUE(has_code(verify_plan(circuit, *plan), "QP107"));
  }
}

}  // namespace
}  // namespace qbarren
