// Tests for the analytic barren-plateau predictor (analysis/predict.hpp):
// closed-form angle laws, the refusal paths (custom gates, beta), dead
// and identity predictions, the FP-noise-floor model, and — the central
// contract — Monte-Carlo conformance over the paper's Fig 5a grid for
// every model-supported initializer under all three cost geometries.
//
// The conformance tests run the repo's real Monte-Carlo pipeline at a
// reduced 50 circuits/point (deterministic seeds; ~1 s per grid), so a
// model or calibration regression fails here before it ships a wrong
// static verdict through QB011/QN120 or `qbarren predict`.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "qbarren/analysis/lint.hpp"
#include "qbarren/analysis/predict.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

/// The six strategies Fig 5a plots.
const std::vector<std::string> kPaperSet = {"random",        "xavier-normal",
                                            "xavier-uniform", "he",
                                            "lecun",          "orthogonal"};

/// Every registry name the model supports (initializer_names() minus
/// "beta", whose non-zero-mean law the model refuses).
std::vector<std::string> supported_names() {
  std::vector<std::string> names;
  for (const std::string& name : initializer_names()) {
    if (angle_model_supported(name)) names.push_back(name);
  }
  return names;
}

VarianceExperimentOptions reduced_grid() {
  VarianceExperimentOptions options;  // paper defaults: q = 2..10, L = 50
  options.circuits_per_point = 50;
  return options;
}

Circuit paper_circuit(std::size_t qubits, std::size_t layers = 50) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = layers;
  return variance_ansatz(qubits, rng, options);
}

// --- angle laws --------------------------------------------------------------

TEST(AngleModel, KnownLawsAndRefusals) {
  const Circuit circuit = paper_circuit(4, 6);

  const auto random = angle_model_for("random", circuit);
  ASSERT_TRUE(random.has_value());
  EXPECT_NEAR(random->variance, M_PI * M_PI / 3.0, 1e-12);

  const auto zeros = angle_model_for("zeros", circuit);
  ASSERT_TRUE(zeros.has_value());
  EXPECT_EQ(zeros->variance, 0.0);

  // Fan-based laws shrink with the register; Xavier sees fan_in = qubits
  // and fan_out = layers under the layer-tensor convention.
  const auto xavier = angle_model_for("xavier-normal", circuit);
  ASSERT_TRUE(xavier.has_value());
  EXPECT_NEAR(xavier->variance, 2.0 / (4.0 + 6.0), 1e-12);
  const auto he = angle_model_for("he", circuit);
  ASSERT_TRUE(he.has_value());
  EXPECT_NEAR(he->variance, 2.0 / 4.0, 1e-12);

  // beta's angles are not zero-mean: no closed-form law, by design.
  EXPECT_FALSE(angle_model_for("beta", circuit).has_value());
  EXPECT_FALSE(angle_model_supported("beta"));
  EXPECT_FALSE(angle_model_for("no-such-strategy", circuit).has_value());

  for (const std::string& name : kPaperSet) {
    EXPECT_TRUE(angle_model_supported(name)) << name;
  }
}

// --- predictor applicability and structure -----------------------------------

TEST(Predictor, RefusesCustomGatesWithDiagnosticNotANumber) {
  Circuit circuit(2);
  circuit.add_rotation(gates::Axis::kX, 0);
  circuit.add_custom_gate("id", ComplexMatrix::identity(2), 1);

  const VariancePredictor predictor(circuit);
  EXPECT_FALSE(predictor.applicable());
  ASSERT_FALSE(predictor.applicability().empty());
  EXPECT_EQ(predictor.applicability().front().code, "QB011");
  EXPECT_EQ(predictor.applicability().front().severity, Severity::kInfo);

  const auto angles = angle_model_for("random", circuit);
  ASSERT_TRUE(angles.has_value());
  EXPECT_THROW((void)predictor.predict(*angles, {0, 1},
                                       PredictedCost::kGlobalProjector),
               InvalidArgument);
}

TEST(Predictor, DeadParameterPredictsExactlyZero) {
  // Eq-2 circuit vs Z0 Z1: the last rotation sits outside the
  // observable's backward light cone (the QB001 configuration).
  const Circuit circuit = paper_circuit(8, 6);
  const VariancePredictor predictor(circuit);
  ASSERT_TRUE(predictor.applicable());

  const auto angles = angle_model_for("random", circuit);
  ASSERT_TRUE(angles.has_value());
  const VariancePrediction prediction =
      predictor.predict(*angles, {0, 1}, PredictedCost::kPauli);

  ASSERT_EQ(prediction.parameters.size(), circuit.num_parameters());
  const ParameterPrediction& last = prediction.parameters.back();
  EXPECT_FALSE(last.alive);
  EXPECT_EQ(last.regime, VarianceRegime::kDead);
  EXPECT_EQ(last.variance, 0.0);
  // Alive parameters still predict nonzero.
  EXPECT_GT(prediction.min_alive_variance(), 0.0);
}

TEST(Predictor, GlobalCostDecaysExponentiallyInWidth) {
  // The deepest parameter's predicted variance under the global cost
  // follows the Haar 2^(-2w) law once mixing saturates: each +2 qubits
  // costs a factor ~16.
  const auto predict_last = [](std::size_t qubits) {
    const Circuit circuit = paper_circuit(qubits);
    const VariancePredictor predictor(circuit);
    const auto angles = angle_model_for("random", circuit);
    std::vector<std::size_t> support(qubits);
    for (std::size_t q = 0; q < qubits; ++q) support[q] = q;
    return predictor.predict(*angles, support,
                             PredictedCost::kGlobalProjector)
        .parameters.back()
        .variance;
  };
  const double v6 = predict_last(6);
  const double v8 = predict_last(8);
  const double v10 = predict_last(10);
  EXPECT_NEAR(v6 / v8, 16.0, 1e-6);
  EXPECT_NEAR(v8 / v10, 16.0, 1e-6);
}

TEST(Predictor, NoiseFloorFlagsWidthsMonteCarloCannotMeasure) {
  // At q = 44 the predicted 2-design variance (~c0 * 2^(-88)) sinks below
  // the compiled plan's accumulated rounding-error bound; at the paper's
  // q = 10 it stays far above. Static only — no 2^44 state exists.
  const auto floor_gap = [](std::size_t qubits) {
    const Circuit circuit = paper_circuit(qubits, 6);
    const VariancePredictor predictor(circuit);
    const auto angles = angle_model_for("random", circuit);
    std::vector<std::size_t> support(qubits);
    for (std::size_t q = 0; q < qubits; ++q) support[q] = q;
    const VariancePrediction p = predictor.predict(
        *angles, support, PredictedCost::kGlobalProjector);
    EXPECT_GT(p.noise_floor, 0.0);
    EXPECT_GT(p.plan_ops, 0u);
    return p.min_alive_variance() - p.noise_floor;
  };
  EXPECT_GT(floor_gap(10), 0.0);
  EXPECT_LT(floor_gap(44), 0.0);
}

// --- the static Fig 5a -------------------------------------------------------

TEST(PredictGrid, ReproducesFig5aOrderingWithZeroSimulation) {
  const PredictionGrid grid =
      predict_variance_grid(reduced_grid(), kPaperSet, {}, 16);
  ASSERT_EQ(grid.series.size(), kPaperSet.size());

  const double random_slope = grid.find("random").decay_fit.slope;
  // Fully mixed: the exact Haar decay d ln V / dq = -2 ln 2.
  EXPECT_NEAR(random_slope, -2.0 * std::log(2.0), 1e-6);

  // Every alternative decays no faster than random, and the Xavier
  // family stays flattest (the paper's headline ordering).
  double flattest = std::abs(random_slope);
  std::string flattest_name = "random";
  for (const std::string& name : kPaperSet) {
    const double slope = std::abs(grid.find(name).decay_fit.slope);
    EXPECT_LE(slope, std::abs(random_slope) + 1e-9) << name;
    if (slope < flattest) {
      flattest = slope;
      flattest_name = name;
    }
  }
  EXPECT_EQ(flattest_name.rfind("xavier", 0), 0u) << flattest_name;
}

TEST(PredictGrid, CellsAreDeterministicAndStructureCapped) {
  const VarianceExperimentOptions options = reduced_grid();
  const CellPrediction a = predict_variance_cell(options, 2, "he", {}, 8);
  const CellPrediction b = predict_variance_cell(options, 2, "he", {}, 8);
  EXPECT_EQ(a.variance, b.variance);
  EXPECT_EQ(a.structures, 8u);
  EXPECT_THROW((void)predict_variance_cell(options, 0, "beta"), NotFound);
}

// --- Monte-Carlo conformance (the committed calibration contract) ------------

void expect_conformant(const ConformanceReport& report) {
  for (const ConformanceCell& cell : report.cells) {
    EXPECT_TRUE(cell.within)
        << cell.initializer << " q=" << cell.qubits << ": predicted "
        << cell.predicted << " vs measured " << cell.measured << " ("
        << cell.log10_error << " decades, band " << cell.tolerance << ")";
  }
  EXPECT_TRUE(report.all_within);
  EXPECT_TRUE(report.ordering_ok);
  EXPECT_TRUE(report.ok());
}

TEST(PredictConformance, GlobalCostEverySupportedInitializer) {
  // The paper's Eq 4 cost over q = 2..10 for all 11 supported
  // strategies, zeros included (both instruments report exactly 0 there:
  // theta = 0 is a stationary point of this ansatz).
  const ConformanceReport report =
      predict_conformance(reduced_grid(), supported_names());
  EXPECT_EQ(report.cells.size(), supported_names().size() * 5);
  expect_conformant(report);
}

TEST(PredictConformance, LocalCostEverySupportedInitializer) {
  VarianceExperimentOptions options = reduced_grid();
  options.cost = CostKind::kLocalZero;
  expect_conformant(predict_conformance(options, supported_names()));
}

TEST(PredictConformance, PauliCostEverySupportedInitializer) {
  VarianceExperimentOptions options = reduced_grid();
  options.cost = CostKind::kPauliZZ;
  // The paper samples the last parameter, which is structurally dead
  // under Z0 Z1 (QB001); differentiate the first — on the observable's
  // support — so the comparison measures the Pauli plateau, not 0 == 0.
  options.which_parameter = GradientParameter::kFirst;
  expect_conformant(predict_conformance(options, supported_names()));
}

TEST(PredictConformance, RefusesUnsupportedInitializer) {
  EXPECT_THROW(
      (void)predict_conformance(reduced_grid(), {"random", "beta"}),
      NotFound);
}

TEST(PredictConformance, JsonRoundTripCarriesVerdicts) {
  VarianceExperimentOptions options = reduced_grid();
  options.qubit_counts = {2, 4};
  options.circuits_per_point = 20;
  const ConformanceReport report =
      predict_conformance(options, {"random", "he"});
  const JsonValue json = report.to_json();
  EXPECT_EQ(json.at("schema").as_string(), "qbarren.predict.conformance.v1");
  EXPECT_EQ(json.at("cells").size(), report.cells.size());
  EXPECT_EQ(json.at("slopes").size(), report.fits.size());
  EXPECT_EQ(json.at("ok").as_bool(), report.ok());
}

}  // namespace
}  // namespace qbarren
