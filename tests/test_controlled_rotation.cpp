// Tests for trainable controlled rotations: simulation correctness,
// adjoint derivatives, the four-term parameter-shift rule, and
// integration with the printer / parser / optimizer / light-cone tools.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/lightcone.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/optimize.hpp"
#include "qbarren/circuit/printer.hpp"
#include "qbarren/circuit/qasm_parser.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/linalg/checks.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

namespace qbarren {
namespace {

TEST(ControlledRotation, BuilderValidation) {
  Circuit c(2);
  EXPECT_THROW((void)c.add_controlled_rotation(gates::Axis::kZ, 0, 0),
               InvalidArgument);
  EXPECT_THROW((void)c.add_controlled_rotation(gates::Axis::kZ, 0, 2),
               InvalidArgument);
  EXPECT_EQ(c.add_controlled_rotation(gates::Axis::kZ, 0, 1), 0u);
  EXPECT_EQ(c.num_parameters(), 1u);
  EXPECT_EQ(c.two_qubit_gate_count(), 1u);
}

TEST(ControlledRotation, ActsOnlyWhenControlSet) {
  // Control |0>: identity on the target.
  Circuit c(2);
  (void)c.add_controlled_rotation(gates::Axis::kY, 0, 1);
  const StateVector untouched = c.simulate(std::vector<double>{1.3});
  EXPECT_NEAR(untouched.probability(0b00), 1.0, 1e-12);

  // Control |1>: RY rotates the target.
  Circuit c2(2);
  c2.add_pauli_x(0);
  (void)c2.add_controlled_rotation(gates::Axis::kY, 0, 1);
  const double theta = 1.3;
  const StateVector rotated = c2.simulate(std::vector<double>{theta});
  EXPECT_NEAR(rotated.probability(0b01),
              std::cos(theta / 2.0) * std::cos(theta / 2.0), 1e-12);
  EXPECT_NEAR(rotated.probability(0b11),
              std::sin(theta / 2.0) * std::sin(theta / 2.0), 1e-12);
}

TEST(ControlledRotation, CrzMatchesGateMatrix) {
  // The IR's controlled-Z-rotation must equal gates::crz (control = low
  // matrix bit) embedded over the pair.
  Circuit c(2);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  const double theta = 0.77;
  const ComplexMatrix via_circuit = c.unitary(std::vector<double>{theta});
  const ComplexMatrix expected =
      embed_two_qubit(gates::crz(theta), 0, 1, 2);
  EXPECT_LT(max_abs_diff(via_circuit, expected), 1e-12);
}

TEST(ControlledRotation, InverseUndoesForward) {
  Circuit c(3);
  c.add_hadamard(0);
  c.add_hadamard(2);
  (void)c.add_controlled_rotation(gates::Axis::kX, 0, 2);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 2, 1);
  const std::vector<double> params{0.9, -1.7};

  StateVector s(3);
  c.apply(s, params);
  for (std::size_t k = c.num_operations(); k-- > 0;) {
    c.apply_operation_inverse(k, s, params);
  }
  EXPECT_NEAR(s.probability(0), 1.0, 1e-11);
}

TEST(ControlledRotation, AdjointMatchesFiniteDifference) {
  Circuit c(3);
  c.add_hadamard(0);
  c.add_hadamard(1);
  (void)c.add_rotation(gates::Axis::kY, 2);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  (void)c.add_controlled_rotation(gates::Axis::kY, 1, 2);
  c.add_cz(0, 2);
  const GlobalZeroObservable obs(3);
  const AdjointEngine adjoint;
  const FiniteDifferenceEngine fd(1e-6);
  const std::vector<double> params{0.4, 1.1, -0.8};
  const auto ga = adjoint.gradient(c, obs, params);
  const auto gf = fd.gradient(c, obs, params);
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_NEAR(ga[i], gf[i], 1e-6) << i;
  }
}

TEST(ControlledRotation, FourTermShiftRuleIsExact) {
  // The headline property: the two-term rule is wrong for controlled
  // rotations, the four-term rule matches the exact (adjoint) gradient.
  // The cost must carry the frequency-1/2 component, which lives in the
  // coherences between the control-0 and control-1 subspaces — measure X
  // on the control qubit to expose it. (For observables confined to one
  // control subspace, e.g. |00><00| after H on the control, the two-term
  // rule happens to coincide.)
  Circuit c(2);
  c.add_hadamard(0);
  (void)c.add_rotation(gates::Axis::kY, 1);
  (void)c.add_controlled_rotation(gates::Axis::kY, 0, 1);
  const PauliStringObservable obs("XI");  // X on the control qubit
  const ParameterShiftEngine shift;
  const AdjointEngine adjoint;
  const std::vector<double> params{0.6, 1.9};

  const auto gs = shift.gradient(c, obs, params);
  const auto ga = adjoint.gradient(c, obs, params);
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], ga[i], 1e-10) << i;
  }

  // Demonstrate the two-term rule actually fails here (i.e. the branch
  // matters): naive 0.5 * (C(+pi/2) - C(-pi/2)) on the controlled
  // parameter deviates from the true gradient.
  auto cost_at = [&](double shift_amount) {
    std::vector<double> p = params;
    p[1] += shift_amount;
    return obs.expectation(c.simulate(p));
  };
  const double naive =
      0.5 * (cost_at(M_PI / 2.0) - cost_at(-M_PI / 2.0));
  EXPECT_GT(std::abs(naive - ga[1]), 1e-4);
}

TEST(ControlledRotation, TrainsEndToEnd) {
  auto circuit = std::make_shared<const Circuit>(
      controlled_rotation_ansatz(3, 2));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;
  auto optimizer = make_optimizer("adam", 0.1);
  TrainOptions options;
  options.max_iterations = 40;
  const std::vector<double> init(circuit->num_parameters(), 0.4);
  const TrainResult result =
      train(cost, engine, *optimizer, init, options);
  EXPECT_LT(result.final_loss, 0.02);
}

TEST(ControlledRotation, AnsatzStructure) {
  const Circuit c = controlled_rotation_ansatz(4, 3);
  // Per layer: 4 RY + 3 CRZ = 7 parameters.
  EXPECT_EQ(c.num_parameters(), 21u);
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->params_per_layer, 7u);
  EXPECT_THROW((void)controlled_rotation_ansatz(1, 2), InvalidArgument);
  EXPECT_THROW((void)controlled_rotation_ansatz(2, 0), InvalidArgument);
}

TEST(ControlledRotation, PrinterAndQasmRoundTrip) {
  Circuit c(2);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  const std::vector<double> params{0.5};

  EXPECT_NE(to_text(c).find("CRZ(theta[0]) q[0], q[1]"),
            std::string::npos);

  const std::string qasm = to_qasm(c, params);
  EXPECT_NE(qasm.find("crz(0.5) q[0], q[1];"), std::string::npos);
  const ParsedQasm parsed = parse_qasm(qasm);
  EXPECT_EQ(parsed.circuit.num_parameters(), 1u);
  EXPECT_NEAR(parsed.parameters[0], 0.5, 1e-12);
  EXPECT_NEAR(parsed.circuit.simulate(parsed.parameters)
                  .fidelity(c.simulate(params)),
              1.0, 1e-12);

  // CRX/CRY have no qelib1 equivalent: export must refuse loudly.
  Circuit crx(2);
  (void)crx.add_controlled_rotation(gates::Axis::kX, 0, 1);
  EXPECT_THROW((void)to_qasm(crx, std::vector<double>{0.1}),
               InvalidArgument);
}

TEST(ControlledRotation, OptimizerPassPreservesIt) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_hadamard(0);  // cancelling pair
  (void)c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 1u);
  EXPECT_EQ(opt.num_parameters(), 1u);
  const std::vector<double> params{0.3};
  EXPECT_LT(max_abs_diff(c.unitary(params), opt.unitary(params)), 1e-12);
}

TEST(ControlledRotation, LightConeTreatsBothQubits) {
  Circuit c(3);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 1, 2);  // before CZ
  c.add_cz(0, 1);
  const LightConeReport report = analyze_light_cone(c, {0});
  // The CZ spreads {0} to {0,1}; the controlled rotation touches qubit 1,
  // so it is alive.
  EXPECT_TRUE(report.alive[0]);
  EXPECT_EQ(report.dead_count, 0u);
}

TEST(ControlledRotation, OperationForParameterLookup) {
  Circuit c(2);
  (void)c.add_rotation(gates::Axis::kX, 0);
  (void)c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  EXPECT_EQ(c.operation_for_parameter(0).kind, OpKind::kRotation);
  EXPECT_EQ(c.operation_for_parameter(1).kind,
            OpKind::kControlledRotation);
  EXPECT_THROW((void)c.operation_for_parameter(2), InvalidArgument);
}

}  // namespace
}  // namespace qbarren
