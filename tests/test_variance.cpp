// Tests for the variance experiment (paper Fig 5a / §VI-A) at reduced
// scale, including the scientific invariants the reproduction relies on.
#include "qbarren/bp/variance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

VarianceExperimentOptions small_options() {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 6};
  options.circuits_per_point = 30;
  options.layers = 20;
  options.seed = 42;
  return options;
}

TEST(VarianceExperiment, ValidatesOptions) {
  VarianceExperimentOptions bad = small_options();
  bad.qubit_counts.clear();
  EXPECT_THROW(VarianceExperiment{bad}, InvalidArgument);

  bad = small_options();
  bad.circuits_per_point = 1;
  EXPECT_THROW(VarianceExperiment{bad}, InvalidArgument);

  bad = small_options();
  bad.layers = 0;
  EXPECT_THROW(VarianceExperiment{bad}, InvalidArgument);

  bad = small_options();
  bad.qubit_counts = {2, 0, 4};
  EXPECT_THROW(VarianceExperiment{bad}, InvalidArgument);

  bad = small_options();
  bad.gradient_engine = "no-such-engine";
  EXPECT_THROW(VarianceExperiment{bad}, NotFound);
}

TEST(VarianceExperiment, RejectsEmptyOrNullInitializers) {
  const VarianceExperiment experiment(small_options());
  EXPECT_THROW((void)experiment.run({}), InvalidArgument);
  EXPECT_THROW((void)experiment.run({nullptr}), InvalidArgument);
}

TEST(VarianceExperiment, ResultShapesMatchOptions) {
  const VarianceExperiment experiment(small_options());
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      experiment.run({random.get(), xavier.get()});

  ASSERT_EQ(result.series.size(), 2u);
  EXPECT_EQ(result.series[0].initializer, "random");
  EXPECT_EQ(result.series[1].initializer, "xavier-normal");
  for (const VarianceSeries& s : result.series) {
    ASSERT_EQ(s.points.size(), 3u);
    EXPECT_EQ(s.points[0].qubits, 2u);
    EXPECT_EQ(s.points[2].qubits, 6u);
    for (const VariancePoint& p : s.points) {
      EXPECT_EQ(p.gradient_summary.count, 30u);
      EXPECT_GT(p.variance, 0.0);
    }
    EXPECT_EQ(s.decay_fit.n, 3u);
  }
}

TEST(VarianceExperiment, DeterministicGivenSeed) {
  const VarianceExperiment experiment(small_options());
  const auto random = make_initializer("random");
  const VarianceResult a = experiment.run({random.get()});
  const VarianceResult b = experiment.run({random.get()});
  for (std::size_t i = 0; i < a.series[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[0].points[i].variance,
                     b.series[0].points[i].variance);
  }
}

TEST(VarianceExperiment, SeedChangesSamples) {
  VarianceExperimentOptions options = small_options();
  const auto random = make_initializer("random");
  const VarianceResult a = VarianceExperiment(options).run({random.get()});
  options.seed = 43;
  const VarianceResult b = VarianceExperiment(options).run({random.get()});
  EXPECT_NE(a.series[0].points[0].variance, b.series[0].points[0].variance);
}

TEST(VarianceExperiment, RandomVarianceDecaysWithQubits) {
  // The barren-plateau signature itself.
  const VarianceExperiment experiment(small_options());
  const auto random = make_initializer("random");
  const VarianceResult result = experiment.run({random.get()});
  const auto& points = result.series[0].points;
  EXPECT_GT(points[0].variance, points[1].variance);
  EXPECT_GT(points[1].variance, points[2].variance);
  EXPECT_LT(result.series[0].decay_fit.slope, -0.5);
}

TEST(VarianceExperiment, XavierImprovesOverRandom) {
  const VarianceExperiment experiment(small_options());
  const VarianceResult result = experiment.run_paper_set();
  EXPECT_GT(result.improvement_percent("xavier-normal"), 20.0);
  EXPECT_GT(result.improvement_percent("xavier-uniform"), 20.0);
}

TEST(VarianceExperiment, AllEngineChoicesAgree) {
  // The variance statistics are engine-independent because the gradients
  // themselves are identical.
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 10;
  options.layers = 8;
  const auto random = make_initializer("random");

  options.gradient_engine = "parameter-shift";
  const VarianceResult shift =
      VarianceExperiment(options).run({random.get()});
  options.gradient_engine = "adjoint";
  const VarianceResult adjoint =
      VarianceExperiment(options).run({random.get()});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(shift.series[0].points[i].variance,
                adjoint.series[0].points[i].variance, 1e-12);
  }
}

TEST(VarianceExperiment, PaperSetRunsAllSixSeries) {
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 8;
  options.layers = 6;
  const VarianceResult result =
      VarianceExperiment(options).run_paper_set();
  ASSERT_EQ(result.series.size(), 6u);
  EXPECT_EQ(result.series[0].initializer, "random");
  EXPECT_EQ(result.series[5].initializer, "orthogonal");
}

TEST(VarianceResult, FindAndImprovementValidation) {
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 8;
  options.layers = 6;
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult no_random =
      VarianceExperiment(options).run({xavier.get()});
  EXPECT_THROW((void)no_random.find("random"), NotFound);
  EXPECT_THROW((void)no_random.improvement_percent("xavier-normal"),
               NotFound);
}

TEST(VarianceResult, TablesHaveExpectedShape) {
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 8;
  options.layers = 6;
  const VarianceResult result =
      VarianceExperiment(options).run_paper_set();

  const Table variance = result.variance_table();
  EXPECT_EQ(variance.columns(), 7u);  // qubits + 6 initializers
  EXPECT_EQ(variance.rows(), 2u);
  EXPECT_EQ(variance.headers()[1], "Var[random]");

  const Table decay = result.decay_table();
  EXPECT_TRUE(result.has_improvement_baseline());
  EXPECT_EQ(decay.columns(), 4u);
  EXPECT_EQ(decay.rows(), 6u);
  EXPECT_EQ(decay.data()[0][3], "(baseline)");
}

TEST(VarianceResult, DegenerateBaselineKeepsImprovementColumnAsNa) {
  // A single qubit count gives the random series no decay fit (n = 0):
  // the improvement column stays in place with "n/a" cells instead of
  // silently disappearing from an otherwise healthy run.
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2};
  options.circuits_per_point = 8;
  options.layers = 6;
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get(), xavier.get()});
  EXPECT_FALSE(result.has_improvement_baseline());
  const Table decay = result.decay_table();
  EXPECT_EQ(decay.columns(), 4u);
  ASSERT_EQ(decay.rows(), 2u);
  EXPECT_EQ(decay.data()[0][3], "(baseline)");
  EXPECT_EQ(decay.data()[1][3], "n/a");
}

TEST(VarianceResult, DecayTableOmitsImprovementWithoutRandom) {
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 8;
  options.layers = 6;
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({xavier.get()});
  EXPECT_EQ(result.decay_table().columns(), 3u);
}

TEST(VarianceExperiment, LastParameterOutsideZzLightConeHasZeroGradient) {
  // With the ZZ cost on qubits {0, 1}, the last parameter is a rotation on
  // qubit q-1 followed only by the diagonal CZ ladder, which commutes with
  // Z0 Z1 — the sampled gradients (and hence their variance) are exactly 0
  // for q > 2.
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {4};
  options.circuits_per_point = 10;
  options.layers = 6;
  options.cost = CostKind::kPauliZZ;
  const auto random = make_initializer("random");

  options.which_parameter = GradientParameter::kLast;
  const VarianceResult last =
      VarianceExperiment(options).run({random.get()});
  EXPECT_NEAR(last.series[0].points[0].variance, 0.0, 1e-20);

  // The first parameter sits behind the whole circuit and does not vanish.
  options.which_parameter = GradientParameter::kFirst;
  const VarianceResult first =
      VarianceExperiment(options).run({random.get()});
  EXPECT_GT(first.series[0].points[0].variance, 1e-6);
}

TEST(VarianceExperiment, MiddleParameterChoiceRuns) {
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {3};
  options.circuits_per_point = 8;
  options.layers = 6;
  options.which_parameter = GradientParameter::kMiddle;
  const auto random = make_initializer("random");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get()});
  EXPECT_GT(result.series[0].points[0].variance, 0.0);
}

TEST(VarianceExperiment, SharedStructuresAcrossInitializers) {
  // Running {random} and {random, xavier} must give the same random series:
  // circuit structures depend only on (seed, q, i).
  VarianceExperimentOptions options = small_options();
  options.qubit_counts = {3};
  options.circuits_per_point = 12;
  options.layers = 10;
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult alone =
      VarianceExperiment(options).run({random.get()});
  const VarianceResult paired =
      VarianceExperiment(options).run({random.get(), xavier.get()});
  EXPECT_DOUBLE_EQ(alone.series[0].points[0].variance,
                   paired.series[0].points[0].variance);
}

}  // namespace
}  // namespace qbarren
