// Tests for the checkpoint store auditor (analysis/store_audit.hpp) and
// the lenient scanner behind it (scan_checkpoint_file): every corruption
// open_salvaging quarantines must surface as a QD error finding, clean
// stores must audit clean, and each QD110-QD115 rule needs a fixture.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "qbarren/analysis/store_audit.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/serve/audit.hpp"
#include "qbarren/serve/service.hpp"

namespace qbarren {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove(path);
  fs::remove(path + ".corrupt");
  return path;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::size_t count_code(const Diagnostics& diagnostics,
                       const std::string& code) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const Diagnostics& diagnostics, const std::string& code) {
  return count_code(diagnostics, code) > 0;
}

/// A small well-formed store: two complete cells under fingerprint "fp".
std::string make_store(const std::string& path) {
  Checkpoint ckpt(path, "fp");
  CheckpointCell a;
  a.scalars["variance"] = 0.125;
  a.vectors["samples"] = {1.0, -2.5, 3.0};
  ckpt.put_cell("q=4/init=he", a);
  CheckpointCell b;
  b.scalars["variance"] = 0.5;
  ckpt.put_cell("q=4/init=random", b);
  ckpt.flush();
  return ckpt.serialize();
}

// --- clean stores -----------------------------------------------------------

TEST(StoreAudit, FreshlyFlushedStoreAuditsClean) {
  const std::string path = temp_path("store_clean.ckpt");
  make_store(path);

  const CheckpointScan scan = scan_checkpoint_file(path);
  EXPECT_TRUE(scan.structurally_clean());
  EXPECT_EQ(scan.fingerprint, "fp");
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.records[0].complete);
  EXPECT_EQ(scan.declared_cells, 2u);

  StoreAuditOptions expectations;
  expectations.expected_fingerprint = "fp";
  expectations.expected_cells = {"q=4/init=he", "q=4/init=random"};
  EXPECT_TRUE(audit_store(path, expectations).empty());
}

// --- QD110-QD112: structural damage ----------------------------------------

TEST(StoreAudit, MissingFileIsQD110) {
  const Diagnostics diagnostics =
      audit_store(temp_path("store_missing.ckpt"));
  ASSERT_TRUE(has_code(diagnostics, "QD110"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StoreAudit, ForeignMagicIsQD110) {
  const std::string path = temp_path("store_magic.ckpt");
  write_file(path, "definitely not a checkpoint\n");
  EXPECT_TRUE(has_code(audit_store(path), "QD110"));
}

TEST(StoreAudit, VersionSkewIsQD111) {
  const std::string path = temp_path("store_version.ckpt");
  write_file(path, "qbarren-checkpoint 99\nfingerprint fp\nend 0\n");
  const Diagnostics diagnostics = audit_store(path);
  EXPECT_TRUE(has_code(diagnostics, "QD111"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StoreAudit, TruncationIsQD112WithLineNumbers) {
  const std::string path = temp_path("store_torn.ckpt");
  const std::string full = make_store(path);
  // Cut mid-payload: inside the first cell's vector line.
  write_file(path, full.substr(0, full.find("samples") + 10));
  const Diagnostics diagnostics = audit_store(path);
  ASSERT_TRUE(has_code(diagnostics, "QD112"));
  EXPECT_TRUE(has_errors(diagnostics));
  // Findings anchor to file:line locations.
  bool anchored = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == "QD112" && d.location.find(path + ":") == 0) {
      anchored = true;
    }
  }
  EXPECT_TRUE(anchored);
}

TEST(StoreAudit, WrongEndCountIsQD112) {
  const std::string path = temp_path("store_count.ckpt");
  std::string text = make_store(path);
  const std::size_t at = text.find("end 2");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 5, "end 7");
  write_file(path, text);
  EXPECT_TRUE(has_code(audit_store(path), "QD112"));
}

TEST(StoreAudit, BadPayloadTokenIsQD112) {
  const std::string path = temp_path("store_token.ckpt");
  std::string text = make_store(path);
  // Replace the first scalar line's hexfloat with a non-numeric token.
  const std::size_t at = text.find("scalar variance ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at);
  text.replace(at, eol - at, "scalar variance zz");
  write_file(path, text);
  EXPECT_TRUE(has_code(audit_store(path), "QD112"));
}

// --- QD113: duplicate records ------------------------------------------------

TEST(StoreAudit, DuplicateCellRecordIsQD113) {
  const std::string path = temp_path("store_dup.ckpt");
  std::string text = make_store(path);
  // Append a second record for an existing key before the end marker,
  // keeping the end count consistent with the *distinct* keys — exactly
  // what strict loading accepts (last record silently wins).
  const std::size_t at = text.find("end 2");
  ASSERT_NE(at, std::string::npos);
  text.insert(at,
              "cell q=4/init=he\nscalar variance 0x1p-3\nendcell\n");
  write_file(path, text);

  // Strict loading accepts the file...
  EXPECT_NO_THROW({ auto loaded = Checkpoint::load(path, "fp"); });
  // ...fsck reports the shadowing.
  const Diagnostics diagnostics = audit_store(path);
  ASSERT_EQ(count_code(diagnostics, "QD113"), 1u);
  EXPECT_TRUE(has_errors(diagnostics));
}

// --- QD114/QD115: expectation mismatches -------------------------------------

TEST(StoreAudit, ForeignFingerprintIsQD114) {
  const std::string path = temp_path("store_foreign.ckpt");
  make_store(path);
  StoreAuditOptions expectations;
  expectations.expected_fingerprint = "other-fp";
  const Diagnostics diagnostics = audit_store(path, expectations);
  ASSERT_TRUE(has_code(diagnostics, "QD114"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StoreAudit, OrphanCellIsQD115Warning) {
  const std::string path = temp_path("store_orphan.ckpt");
  make_store(path);
  StoreAuditOptions expectations;
  expectations.expected_fingerprint = "fp";
  expectations.expected_cells = {"q=4/init=he"};  // random is an orphan
  const Diagnostics diagnostics = audit_store(path, expectations);
  ASSERT_EQ(count_code(diagnostics, "QD115"), 1u);
  EXPECT_FALSE(has_errors(diagnostics));
}

TEST(StoreAudit, CacheNamespaceIgnoresForeignPrefixes) {
  const std::string path = temp_path("store_cache.ckpt");
  Checkpoint ckpt(path, "cache-fp");
  CheckpointCell cell;
  cell.scalars["v"] = 1.0;
  ckpt.put_cell("fpA|init=he", cell);
  ckpt.put_cell("fpB|init=he", cell);  // another request's cell
  ckpt.flush();

  StoreAuditOptions expectations;
  expectations.expected_fingerprint = "cache-fp";
  expectations.cell_namespace = "fpA|";
  expectations.expected_cells = {"init=he"};
  // fpB's cells are out of scope; fpA's cell matches: clean.
  EXPECT_TRUE(audit_store(path, expectations).empty());

  // But an fpA-namespaced key outside the enumeration is an orphan.
  ckpt.put_cell("fpA|init=bogus", cell);
  ckpt.flush();
  EXPECT_EQ(count_code(audit_store(path, expectations), "QD115"), 1u);
}

// --- agreement with open_salvaging ------------------------------------------

TEST(StoreAudit, EveryQuarantinedCorruptionYieldsAnErrorFinding) {
  // Hand-corrupted variants of the same store. For each: if the salvaging
  // opener quarantines the file, fsck must report at least one QD error —
  // the two layers may never disagree about whether a store is damaged.
  const std::string base_path = temp_path("store_agree.ckpt");
  const std::string full = make_store(base_path);

  std::vector<std::pair<std::string, std::string>> variants;
  variants.emplace_back("truncated mid-cell",
                        full.substr(0, full.find("endcell")));
  variants.emplace_back("truncated before end marker",
                        full.substr(0, full.find("end 2")));
  variants.emplace_back("garbage header",
                        "garbage\n" + full.substr(full.find('\n') + 1));
  std::string wrong_count = full;
  wrong_count.replace(wrong_count.find("end 2"), 5, "end 9");
  variants.emplace_back("wrong end count", wrong_count);
  std::string stale = full;
  stale.replace(stale.find("fingerprint fp"),
                std::string("fingerprint fp").size(),
                "fingerprint other");
  variants.emplace_back("stale fingerprint", stale);
  std::string unknown_tag = full;
  unknown_tag.insert(unknown_tag.find("endcell"), "mystery line\n");
  variants.emplace_back("unknown tag", unknown_tag);

  for (const auto& [name, content] : variants) {
    const std::string path = temp_path("store_agree_case.ckpt");
    write_file(path, content);

    StoreAuditOptions expectations;
    expectations.expected_fingerprint = "fp";
    const Diagnostics diagnostics = audit_store(path, expectations);

    CheckpointSalvage salvage;
    const Checkpoint recovered =
        Checkpoint::open_salvaging(path, "fp", &salvage);
    ASSERT_TRUE(salvage.quarantined) << name;
    EXPECT_TRUE(has_errors(diagnostics)) << name;
  }
}

TEST(StoreAudit, CleanStoreSalvagesCleanAndAuditsClean) {
  const std::string path = temp_path("store_agree_clean.ckpt");
  make_store(path);
  StoreAuditOptions expectations;
  expectations.expected_fingerprint = "fp";
  EXPECT_FALSE(has_errors(audit_store(path, expectations)));
  CheckpointSalvage salvage;
  const Checkpoint recovered =
      Checkpoint::open_salvaging(path, "fp", &salvage);
  EXPECT_FALSE(salvage.quarantined);
  EXPECT_EQ(recovered.cell_count(), 2u);
}

// --- serve store expectations ------------------------------------------------

TEST(StoreAudit, ServeExpectationsMatchEnumerationAndCacheLayout) {
  serve::RequestSpec spec;
  spec.id = "r";
  spec.kind = serve::SpecKind::kTraining;

  const StoreAuditOptions run_store =
      serve::store_expectations(spec, /*cache_store=*/false);
  EXPECT_EQ(run_store.expected_fingerprint, serve::spec_fingerprint(spec));
  EXPECT_TRUE(run_store.cell_namespace.empty());
  ASSERT_FALSE(run_store.expected_cells.empty());
  EXPECT_EQ(run_store.expected_cells.front().rfind("init=", 0), 0u);

  const StoreAuditOptions cache_store =
      serve::store_expectations(spec, /*cache_store=*/true);
  EXPECT_EQ(cache_store.expected_fingerprint,
            serve::ExperimentService::kCacheFingerprint);
  EXPECT_EQ(cache_store.cell_namespace,
            serve::spec_fingerprint(spec) + "|");
}

TEST(StoreAudit, JsonRoundTripOfStoreFindings) {
  const std::string path = temp_path("store_json.ckpt");
  write_file(path, "qbarren-checkpoint 99\nfingerprint fp\nend 0\n");
  const Diagnostics diagnostics = audit_store(path);
  ASSERT_FALSE(diagnostics.empty());
  const Diagnostics restored =
      diagnostics_from_json(parse_json(to_json(diagnostics).dump(2)));
  ASSERT_EQ(restored.size(), diagnostics.size());
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    EXPECT_EQ(restored[i].code, diagnostics[i].code);
    EXPECT_EQ(restored[i].location, diagnostics[i].location);
  }
}

}  // namespace
}  // namespace qbarren
