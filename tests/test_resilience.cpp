// End-to-end resilience tests: deterministic fault injection through the
// gradient-engine decorators, every non-finite recovery policy in train(),
// and interrupt/resume round trips that must reproduce an uninterrupted
// run bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>

#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/grad/guard.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

namespace qbarren {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove(path);
  return path;
}

// --- fault-injection decorators ---------------------------------------------

struct SmallProblem {
  std::shared_ptr<const Circuit> circuit;
  CostFunction cost;
  std::vector<double> params;

  SmallProblem()
      : circuit(std::make_shared<const Circuit>(
            training_ansatz(3, TrainingAnsatzOptions{.layers = 2}))),
        cost(make_identity_cost(circuit)),
        params(circuit->num_parameters(), 0.3) {}
};

TEST(FaultInjectedEngine, PoisonsExactlyTheConfiguredCall) {
  const SmallProblem p;
  const auto engine = make_gradient_engine("nan-at:1:adjoint");
  EXPECT_EQ(engine->name(), "nan-at:1:adjoint");

  const auto finite = [](const std::vector<double>& g) {
    for (const double x : g) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  const auto g0 = engine->gradient(*p.circuit, p.cost.observable(), p.params);
  const auto g1 = engine->gradient(*p.circuit, p.cost.observable(), p.params);
  const auto g2 = engine->gradient(*p.circuit, p.cost.observable(), p.params);
  EXPECT_TRUE(finite(g0));
  EXPECT_FALSE(finite(g1));  // call index 1 is the poisoned one
  EXPECT_TRUE(finite(g2));
}

TEST(FaultInjectedEngine, PartialAndValueAndGradientAlsoCounted) {
  const SmallProblem p;
  const auto engine = make_gradient_engine("nan-at:0:parameter-shift");
  EXPECT_TRUE(std::isnan(
      engine->partial(*p.circuit, p.cost.observable(), p.params, 0)));
  // The counter advanced past the fault: later calls are clean.
  const ValueAndGradient vg =
      engine->value_and_gradient(*p.circuit, p.cost.observable(), p.params);
  EXPECT_TRUE(std::isfinite(vg.value));
  for (const double g : vg.gradient) {
    EXPECT_TRUE(std::isfinite(g));
  }
}

TEST(NonFiniteGuardEngine, ThrowsAtThePointOfProduction) {
  const SmallProblem p;
  const auto guarded = make_gradient_engine("guarded:nan-at:0:adjoint");
  EXPECT_EQ(guarded->name(), "guarded:nan-at:0:adjoint");
  EXPECT_THROW(
      (void)guarded->gradient(*p.circuit, p.cost.observable(), p.params),
      NumericalError);

  const auto guarded_partial = make_gradient_engine("guarded:nan-at:0:adjoint");
  EXPECT_THROW((void)guarded_partial->partial(*p.circuit, p.cost.observable(),
                                              p.params, 0),
               NumericalError);
}

TEST(NonFiniteGuardEngine, TransparentForFiniteOutput) {
  const SmallProblem p;
  const auto plain = make_gradient_engine("adjoint");
  const auto guarded = make_gradient_engine("guarded:adjoint");
  const auto g_plain =
      plain->gradient(*p.circuit, p.cost.observable(), p.params);
  const auto g_guarded =
      guarded->gradient(*p.circuit, p.cost.observable(), p.params);
  EXPECT_EQ(g_plain, g_guarded);
}

TEST(GradientEngineFactory, RejectsMalformedDecoratorNames) {
  EXPECT_THROW((void)make_gradient_engine("nan-at:x:adjoint"), NotFound);
  EXPECT_THROW((void)make_gradient_engine("nan-at:3"), NotFound);
  EXPECT_THROW((void)make_gradient_engine("nan-at:3:no-such-engine"),
               NotFound);
  EXPECT_THROW((void)make_gradient_engine("guarded:"), NotFound);
}

// The crash/hang decorators themselves are only *triggered* through the
// serve process tests (an in-process abort() would take gtest down with
// it); here we pin down their construction, naming, and pre-fault
// transparency.
TEST(FaultInjectedEngine, CrashAndHangDecoratorsParseAndRoundTripNames) {
  const auto crash = make_gradient_engine("crash-at:3:adjoint");
  EXPECT_EQ(crash->name(), "crash-at:3:adjoint");
  const auto hang = make_gradient_engine("hang-at:0:parameter-shift");
  EXPECT_EQ(hang->name(), "hang-at:0:parameter-shift");
  // Decorators nest like any engine name.
  const auto nested = make_gradient_engine("guarded:crash-at:2:adjoint");
  EXPECT_EQ(nested->name(), "guarded:crash-at:2:adjoint");

  EXPECT_THROW((void)make_gradient_engine("crash-at:x:adjoint"), NotFound);
  EXPECT_THROW((void)make_gradient_engine("crash-at:3"), NotFound);
  EXPECT_THROW((void)make_gradient_engine("hang-at::adjoint"), NotFound);
  EXPECT_THROW((void)make_gradient_engine("hang-at:1:no-such-engine"),
               NotFound);
}

TEST(FaultInjectedEngine, CrashDecoratorTransparentBeforeConfiguredCall) {
  const SmallProblem p;
  // Fault scheduled far beyond the calls made here: every output must be
  // bit-identical to the undecorated engine's.
  const auto decorated = make_gradient_engine("crash-at:100:adjoint");
  const auto plain = make_gradient_engine("adjoint");
  EXPECT_EQ(decorated->gradient(*p.circuit, p.cost.observable(), p.params),
            plain->gradient(*p.circuit, p.cost.observable(), p.params));
  EXPECT_EQ(decorated->partial(*p.circuit, p.cost.observable(), p.params, 1),
            plain->partial(*p.circuit, p.cost.observable(), p.params, 1));
}

// --- train() non-finite policies --------------------------------------------

TrainResult train_small(const std::string& engine_name,
                        const TrainOptions& options) {
  const SmallProblem p;
  const auto engine = make_gradient_engine(engine_name);
  const auto optimizer = make_optimizer("gradient-descent", 0.1);
  return train(p.cost, *engine, *optimizer, p.params, options);
}

TEST(TrainNonFinite, ThrowPolicyFailsLoudly) {
  TrainOptions options;
  options.max_iterations = 5;
  options.non_finite_policy = NonFinitePolicy::kThrow;
  EXPECT_THROW((void)train_small("nan-at:2:adjoint", options),
               NumericalError);
}

TEST(TrainNonFinite, AbortSeriesKeepsPartialHistory) {
  TrainOptions options;
  options.max_iterations = 5;
  options.non_finite_policy = NonFinitePolicy::kAbortSeries;
  const TrainResult result = train_small("nan-at:2:adjoint", options);
  EXPECT_TRUE(result.aborted_non_finite);
  EXPECT_FALSE(result.hit_deadline);
  // Iterations 0 and 1 completed; the poisoned gradient at iteration 2
  // stopped the series before its step.
  EXPECT_EQ(result.iterations, 2u);
  EXPECT_EQ(result.loss_history.size(), 3u);
  EXPECT_EQ(result.final_loss, result.loss_history.back());
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(TrainNonFinite, FallbackEngineRecoversAndFinishes) {
  TrainOptions clean_options;
  clean_options.max_iterations = 5;
  const TrainResult clean = train_small("adjoint", clean_options);

  TrainOptions options = clean_options;
  options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  const ParameterShiftEngine fallback;
  options.fallback_engine = &fallback;
  const TrainResult result = train_small("nan-at:2:adjoint", options);

  EXPECT_FALSE(result.aborted_non_finite);
  EXPECT_EQ(result.fallback_invocations, 1u);
  EXPECT_EQ(result.iterations, 5u);
  ASSERT_EQ(result.loss_history.size(), clean.loss_history.size());
  // Parameter-shift computes the same gradients as adjoint (up to fp
  // noise), so the recovered trajectory matches the clean one.
  for (std::size_t i = 0; i < clean.loss_history.size(); ++i) {
    EXPECT_NEAR(result.loss_history[i], clean.loss_history[i], 1e-9);
  }
}

TEST(TrainNonFinite, FallbackAlsoFaultyThrows) {
  TrainOptions options;
  options.max_iterations = 5;
  options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  // The fallback's first call (index 0) is poisoned too: at the primary's
  // fault the retry produces another NaN and the loop must give up.
  const auto faulty_fallback = make_gradient_engine("nan-at:0:adjoint");
  options.fallback_engine = faulty_fallback.get();
  EXPECT_THROW((void)train_small("nan-at:2:adjoint", options),
               NumericalError);
}

TEST(TrainNonFinite, FallbackPolicyRequiresEngine) {
  TrainOptions options;
  options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  EXPECT_THROW((void)train_small("adjoint", options), InvalidArgument);
}

TEST(TrainDeadline, ZeroDeadlineStopsBeforeFirstStep) {
  TrainOptions options;
  options.max_iterations = 50;
  options.deadline_seconds = 0.0;
  const TrainResult result = train_small("adjoint", options);
  EXPECT_TRUE(result.hit_deadline);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.loss_history.size(), 1u);
  EXPECT_EQ(result.final_loss, result.initial_loss);
}

TEST(TrainDeadline, NegativeDeadlineRejected) {
  TrainOptions options;
  options.deadline_seconds = -1.0;
  EXPECT_THROW((void)train_small("adjoint", options), InvalidArgument);
}

TEST(TrainCancel, PreCancelledTokenThrowsBeforeAnyStep) {
  CancellationToken token;
  token.request_cancel();
  TrainOptions options;
  options.cancel = &token;
  EXPECT_THROW((void)train_small("adjoint", options), Cancelled);
}

// --- experiment-level fault handling ----------------------------------------

TrainingExperimentOptions faulty_training_options() {
  TrainingExperimentOptions options;
  options.qubits = 3;
  options.layers = 2;
  options.iterations = 5;
  options.gradient_engine = "nan-at:2:adjoint";
  return options;
}

TEST(TrainingExperimentNonFinite, ThrowPolicy) {
  TrainingExperimentOptions options = faulty_training_options();
  options.non_finite_policy = NonFinitePolicy::kThrow;
  const auto init = make_initializer("xavier-normal");
  EXPECT_THROW((void)TrainingExperiment(options).run({init.get()}),
               NumericalError);
}

TEST(TrainingExperimentNonFinite, AbortSeriesPolicy) {
  TrainingExperimentOptions options = faulty_training_options();
  options.non_finite_policy = NonFinitePolicy::kAbortSeries;
  const auto init = make_initializer("xavier-normal");
  const TrainingResult result = TrainingExperiment(options).run({init.get()});
  EXPECT_TRUE(result.series[0].result.aborted_non_finite);
  EXPECT_EQ(result.series[0].result.iterations, 2u);
}

TEST(TrainingExperimentNonFinite, FallbackPolicySuppliesParameterShift) {
  TrainingExperimentOptions clean = faulty_training_options();
  clean.gradient_engine = "adjoint";
  const auto init = make_initializer("xavier-normal");
  const TrainingResult reference =
      TrainingExperiment(clean).run({init.get()});

  TrainingExperimentOptions options = faulty_training_options();
  options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  const TrainingResult result = TrainingExperiment(options).run({init.get()});
  const TrainResult& r = result.series[0].result;
  EXPECT_FALSE(r.aborted_non_finite);
  EXPECT_EQ(r.fallback_invocations, 1u);
  EXPECT_EQ(r.iterations, 5u);
  const TrainResult& ref = reference.series[0].result;
  ASSERT_EQ(r.loss_history.size(), ref.loss_history.size());
  for (std::size_t i = 0; i < ref.loss_history.size(); ++i) {
    EXPECT_NEAR(r.loss_history[i], ref.loss_history[i], 1e-9);
  }
}

TEST(VarianceExperimentNonFinite, NanSampleThrowsNamingTheCell) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2};
  options.circuits_per_point = 6;
  options.layers = 2;
  options.gradient_engine = "nan-at:3:parameter-shift";
  const auto init = make_initializer("random");
  try {
    (void)VarianceExperiment(options).run({init.get()});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
    EXPECT_NE(what.find("random"), std::string::npos) << what;
  }
}

// --- interrupt / resume round trips -----------------------------------------

VarianceExperimentOptions small_variance_options() {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 6;
  options.layers = 2;
  options.seed = 42;
  return options;
}

void expect_same_variance(const VarianceResult& a, const VarianceResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].initializer, b.series[s].initializer);
    ASSERT_EQ(a.series[s].points.size(), b.series[s].points.size());
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i) {
      const VariancePoint& pa = a.series[s].points[i];
      const VariancePoint& pb = b.series[s].points[i];
      EXPECT_EQ(pa.qubits, pb.qubits);
      EXPECT_EQ(pa.variance, pb.variance);  // bit-for-bit, not NEAR
      EXPECT_EQ(pa.gradient_summary.mean, pb.gradient_summary.mean);
      EXPECT_EQ(pa.gradient_summary.min, pb.gradient_summary.min);
      EXPECT_EQ(pa.gradient_summary.max, pb.gradient_summary.max);
      EXPECT_EQ(pa.gradient_summary.median, pb.gradient_summary.median);
    }
    EXPECT_EQ(a.series[s].decay_fit.slope, b.series[s].decay_fit.slope);
    EXPECT_EQ(a.series[s].decay_fit.intercept,
              b.series[s].decay_fit.intercept);
    EXPECT_EQ(a.series[s].decay_fit.r_squared,
              b.series[s].decay_fit.r_squared);
  }
}

TEST(ResumeVariance, InterruptedRunMatchesReferenceBitForBit) {
  const VarianceExperimentOptions options = small_variance_options();
  const VarianceExperiment experiment(options);
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const std::vector<const Initializer*> inits = {random.get(), xavier.get()};

  const VarianceResult reference = experiment.run(inits);

  // Interrupt after the first qubit count's cells. (Initializers of one
  // qubit count share a circuit-sampling pass, so cells complete per
  // qubit count — cancel at that boundary.)
  const std::string path = temp_path("resume_variance.ckpt");
  const std::string fingerprint = options_fingerprint(options);
  {
    Checkpoint ckpt(path, fingerprint);
    CancellationToken token;
    RunControl control;
    control.cancel = &token;
    control.checkpoint = &ckpt;
    control.progress = [&token](const RunProgress& p) {
      if (p.completed == 2) token.request_cancel();
    };
    EXPECT_THROW((void)experiment.run(inits, control), Cancelled);
  }

  // The flushed checkpoint on disk is valid and holds the finished cells.
  EXPECT_EQ(Checkpoint::load(path, fingerprint).cell_count(), 2u);

  // Resume: restored cells + the remaining computed cell reproduce the
  // uninterrupted reference exactly.
  Checkpoint resumed = Checkpoint::open(path, fingerprint, /*resume=*/true);
  RunControl control;
  control.checkpoint = &resumed;
  std::size_t restored = 0;
  control.progress = [&restored](const RunProgress& p) {
    if (p.from_checkpoint) ++restored;
  };
  const VarianceResult result = experiment.run(inits, control);
  EXPECT_EQ(restored, 2u);
  expect_same_variance(reference, result);
}

TEST(ResumeVariance, StaleCheckpointRefused) {
  const VarianceExperiment experiment(small_variance_options());
  const auto init = make_initializer("random");
  Checkpoint stale("", "variance/v1;some=other;options=entirely");
  RunControl control;
  control.checkpoint = &stale;
  EXPECT_THROW((void)experiment.run({init.get()}, control), CheckpointError);
}

TEST(ResumeVariance, HookFreeControlMatchesPlainRun) {
  const VarianceExperiment experiment(small_variance_options());
  const auto init = make_initializer("random");
  const VarianceResult plain = experiment.run({init.get()});
  const VarianceResult hooked = experiment.run({init.get()}, RunControl{});
  expect_same_variance(plain, hooked);
}

TEST(ResumeTraining, InterruptedRunMatchesReferenceBitForBit) {
  TrainingExperimentOptions options;
  options.qubits = 3;
  options.layers = 2;
  options.iterations = 6;
  const TrainingExperiment experiment(options);
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const std::vector<const Initializer*> inits = {random.get(), xavier.get()};

  const TrainingResult reference = experiment.run(inits);

  const std::string path = temp_path("resume_training.ckpt");
  const std::string fingerprint = options_fingerprint(options);
  {
    Checkpoint ckpt(path, fingerprint);
    CancellationToken token;
    RunControl control;
    control.cancel = &token;
    control.checkpoint = &ckpt;
    control.progress = [&token](const RunProgress& p) {
      if (p.completed == 1) token.request_cancel();
    };
    EXPECT_THROW((void)experiment.run(inits, control), Cancelled);
  }
  EXPECT_EQ(Checkpoint::load(path, fingerprint).cell_count(), 1u);

  Checkpoint resumed = Checkpoint::open(path, fingerprint, /*resume=*/true);
  RunControl control;
  control.checkpoint = &resumed;
  const TrainingResult result = experiment.run(inits, control);

  ASSERT_EQ(result.series.size(), reference.series.size());
  for (std::size_t s = 0; s < reference.series.size(); ++s) {
    const TrainResult& a = reference.series[s].result;
    const TrainResult& b = result.series[s].result;
    EXPECT_EQ(a.loss_history, b.loss_history);  // exact vector equality
    EXPECT_EQ(a.gradient_norm_history, b.gradient_norm_history);
    EXPECT_EQ(a.final_params, b.final_params);
    EXPECT_EQ(a.initial_loss, b.initial_loss);
    EXPECT_EQ(a.final_loss, b.final_loss);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.reached_target, b.reached_target);
    EXPECT_EQ(a.aborted_non_finite, b.aborted_non_finite);
    EXPECT_EQ(a.hit_deadline, b.hit_deadline);
    EXPECT_EQ(a.fallback_invocations, b.fallback_invocations);
  }
}

TEST(ResumeTraining, StaleCheckpointRefused) {
  TrainingExperimentOptions options;
  options.qubits = 3;
  options.layers = 2;
  options.iterations = 2;
  const auto init = make_initializer("random");
  Checkpoint stale("", "training/v1;different");
  RunControl control;
  control.checkpoint = &stale;
  EXPECT_THROW((void)TrainingExperiment(options).run({init.get()}, control),
               CheckpointError);
}

TEST(ResumeSweep, SigintMidSweepFlushesValidCheckpointAndResumes) {
  TrainingSweepOptions sweep;
  sweep.base.qubits = 3;
  sweep.base.layers = 2;
  sweep.base.iterations = 4;
  sweep.repetitions = 2;
  const auto init = make_initializer("xavier-normal");
  const std::vector<const Initializer*> inits = {init.get()};

  const TrainingSweepResult reference = run_training_sweep(inits, sweep);

  // A real SIGINT, raised from the progress hook after the first of the
  // two (repetition, initializer) cells, lands in the signal bridge and
  // cancels the sweep cooperatively.
  const std::string path = temp_path("resume_sweep.ckpt");
  const std::string fingerprint = options_fingerprint(sweep);
  {
    Checkpoint ckpt(path, fingerprint);
    CancellationToken token;
    ScopedSignalCancellation signal_guard(token);
    RunControl control;
    control.cancel = &token;
    control.checkpoint = &ckpt;
    control.progress = [](const RunProgress& p) {
      if (p.completed == 1) std::raise(SIGINT);
    };
    EXPECT_THROW((void)run_training_sweep(inits, sweep, control), Cancelled);
    EXPECT_TRUE(token.cancelled());
  }

  // The interrupted sweep left a loadable checkpoint with the finished
  // repetition, namespaced per repetition.
  const Checkpoint on_disk = Checkpoint::load(path, fingerprint);
  EXPECT_EQ(on_disk.cell_count(), 1u);
  EXPECT_TRUE(on_disk.has_cell("rep=0/init=xavier-normal"));

  Checkpoint resumed = Checkpoint::open(path, fingerprint, /*resume=*/true);
  RunControl control;
  control.checkpoint = &resumed;
  const TrainingSweepResult result = run_training_sweep(inits, sweep, control);

  ASSERT_EQ(result.series.size(), reference.series.size());
  for (std::size_t s = 0; s < reference.series.size(); ++s) {
    EXPECT_EQ(result.series[s].initializer, reference.series[s].initializer);
    EXPECT_EQ(result.series[s].final_losses,
              reference.series[s].final_losses);  // exact
    EXPECT_EQ(result.series[s].final_loss_summary.mean,
              reference.series[s].final_loss_summary.mean);
  }
}

TEST(ResumeSweep, StaleCheckpointRefused) {
  TrainingSweepOptions sweep;
  sweep.base.qubits = 3;
  sweep.base.layers = 2;
  sweep.base.iterations = 2;
  sweep.repetitions = 2;
  const auto init = make_initializer("random");
  Checkpoint stale("", "training-sweep/v1;different");
  RunControl control;
  control.checkpoint = &stale;
  EXPECT_THROW((void)run_training_sweep({init.get()}, sweep, control),
               CheckpointError);
}

TEST(ResumePositionalVariance, InterruptedRunMatchesReference) {
  const VarianceExperimentOptions options = small_variance_options();
  const auto init = make_initializer("xavier-normal");
  const std::vector<double> fractions = {0.0, 0.5, 1.0};

  const PositionalVarianceResult reference =
      positional_variance(options, *init, fractions);

  const std::string path = temp_path("resume_positional.ckpt");
  const std::string fingerprint =
      positional_fingerprint(options, *init, fractions);
  {
    Checkpoint ckpt(path, fingerprint);
    CancellationToken token;
    RunControl control;
    control.cancel = &token;
    control.checkpoint = &ckpt;
    control.progress = [&token](const RunProgress& p) {
      if (p.completed == 1) token.request_cancel();
    };
    EXPECT_THROW(
        (void)positional_variance(options, *init, fractions, control),
        Cancelled);
  }
  EXPECT_EQ(Checkpoint::load(path, fingerprint).cell_count(), 1u);

  Checkpoint resumed = Checkpoint::open(path, fingerprint, /*resume=*/true);
  RunControl control;
  control.checkpoint = &resumed;
  const PositionalVarianceResult result =
      positional_variance(options, *init, fractions, control);

  EXPECT_EQ(result.fractions, reference.fractions);
  EXPECT_EQ(result.qubit_counts, reference.qubit_counts);
  ASSERT_EQ(result.variances.size(), reference.variances.size());
  for (std::size_t f = 0; f < reference.variances.size(); ++f) {
    EXPECT_EQ(result.variances[f], reference.variances[f]);  // exact
  }
}

// --- parallel execution ------------------------------------------------------

TEST(ParallelVariance, JobCountNeverChangesTheBytes) {
  const VarianceExperimentOptions options = small_variance_options();
  const VarianceExperiment experiment(options);
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const std::vector<const Initializer*> inits = {random.get(), xavier.get()};
  const std::string fingerprint = options_fingerprint(options);

  // The strongest form of the determinism contract: the rendered JSON and
  // the checkpoint byte stream are identical at any job count.
  std::string reference_json;
  std::string reference_ckpt;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    Checkpoint ckpt("", fingerprint);  // in-memory store
    RunControl control;
    control.jobs = jobs;
    control.checkpoint = &ckpt;
    const VarianceResult result = experiment.run(inits, control);
    EXPECT_TRUE(result.failures.empty());
    const std::string json = to_json(result).dump();
    const std::string bytes = ckpt.serialize();
    if (reference_json.empty()) {
      reference_json = json;
      reference_ckpt = bytes;
    } else {
      EXPECT_EQ(json, reference_json) << "jobs=" << jobs;
      EXPECT_EQ(bytes, reference_ckpt) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelVariance, FailureBudgetKeepsTheRunAliveAndReportsTheCell) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2};
  options.circuits_per_point = 6;
  options.layers = 2;
  options.gradient_engine = "nan-at:3:parameter-shift";
  const auto init = make_initializer("random");

  RunControl control;
  control.max_cell_failures = 1;
  const VarianceResult result =
      VarianceExperiment(options).run({init.get()}, control);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].cell, "q=2/init=random");
  EXPECT_EQ(result.failures[0].error, CellErrorClass::kNonFinite);
  EXPECT_EQ(result.failures[0].attempts, 1u);
  EXPECT_TRUE(std::isnan(result.series[0].points[0].variance));

  // The failure is self-describing in the result JSON.
  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"non-finite\""), std::string::npos);
  EXPECT_NE(json.find("\"cell\":\"q=2/init=random\""), std::string::npos);
  // And in the human-readable summary.
  const std::string summary = failure_summary(result.failures);
  EXPECT_NE(summary.find("cell q=2/init=random: non-finite after 1"),
            std::string::npos);
}

TEST(ParallelVariance, RetryRecoversTheCellBitForBit) {
  VarianceExperimentOptions faulty;
  faulty.qubit_counts = {2};
  faulty.circuits_per_point = 6;
  faulty.layers = 2;
  faulty.gradient_engine = "nan-at:3:parameter-shift";
  VarianceExperimentOptions clean = faulty;
  clean.gradient_engine = "parameter-shift";
  const auto init = make_initializer("random");

  const VarianceResult reference = VarianceExperiment(clean).run({init.get()});

  // Attempt 0 hits the poisoned sample; the retry switches the cell to the
  // plain parameter-shift fallback, whose samples match the clean engine's
  // exactly (cells re-draw from their own RNG child streams).
  RunControl control;
  control.max_cell_attempts = 2;
  const VarianceResult result =
      VarianceExperiment(faulty).run({init.get()}, control);
  EXPECT_TRUE(result.failures.empty());
  expect_same_variance(reference, result);
}

TEST(ParallelTraining, WatchdogDeadlineIsReportedAsTimeout) {
  TrainingExperimentOptions options;
  options.qubits = 6;
  options.layers = 3;
  options.iterations = 200;
  options.gradient_engine = "parameter-shift";  // deliberately slow
  const auto init = make_initializer("xavier-normal");

  RunControl control;
  control.cell_timeout_seconds = 0.0;  // fires on the watchdog's first sweep
  control.max_cell_failures = 1;
  const TrainingResult result =
      TrainingExperiment(options).run({init.get()}, control);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].cell, "init=xavier-normal");
  EXPECT_EQ(result.failures[0].error, CellErrorClass::kTimeout);
  EXPECT_NE(result.failures[0].message.find("soft deadline"),
            std::string::npos);
  EXPECT_TRUE(std::isnan(result.series[0].result.final_loss));
}

TEST(ParallelSweep, JobsMatchSerialExactly) {
  TrainingSweepOptions sweep;
  sweep.base.qubits = 3;
  sweep.base.layers = 2;
  sweep.base.iterations = 4;
  sweep.repetitions = 2;
  const auto a = make_initializer("random");
  const auto b = make_initializer("xavier-normal");
  const std::vector<const Initializer*> inits = {a.get(), b.get()};

  const TrainingSweepResult serial = run_training_sweep(inits, sweep);
  RunControl control;
  control.jobs = 8;
  const TrainingSweepResult parallel =
      run_training_sweep(inits, sweep, control);

  EXPECT_TRUE(parallel.failures.empty());
  ASSERT_EQ(parallel.series.size(), serial.series.size());
  for (std::size_t s = 0; s < serial.series.size(); ++s) {
    EXPECT_EQ(parallel.series[s].initializer, serial.series[s].initializer);
    EXPECT_EQ(parallel.series[s].final_losses,
              serial.series[s].final_losses);  // exact, not NEAR
    EXPECT_EQ(parallel.series[s].final_loss_summary.mean,
              serial.series[s].final_loss_summary.mean);
  }
}

TEST(ParallelPositionalVariance, JobsMatchSerialExactly) {
  const VarianceExperimentOptions options = small_variance_options();
  const auto init = make_initializer("xavier-normal");
  const std::vector<double> fractions = {0.0, 0.5, 1.0};

  const PositionalVarianceResult serial =
      positional_variance(options, *init, fractions);
  RunControl control;
  control.jobs = 8;
  const PositionalVarianceResult parallel =
      positional_variance(options, *init, fractions, control);

  ASSERT_EQ(parallel.variances.size(), serial.variances.size());
  for (std::size_t f = 0; f < serial.variances.size(); ++f) {
    EXPECT_EQ(parallel.variances[f], serial.variances[f]);
  }
}

TEST(Fingerprints, DifferOnResultShapingOptionsOnly) {
  VarianceExperimentOptions a = small_variance_options();
  VarianceExperimentOptions b = a;
  b.seed = 43;
  EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
  b = a;
  b.layers = 3;
  EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
  // keep_samples does not shape the statistics: same fingerprint, so a
  // checkpoint can be resumed with sample retention toggled.
  b = a;
  b.keep_samples = !a.keep_samples;
  EXPECT_EQ(options_fingerprint(a), options_fingerprint(b));

  TrainingExperimentOptions t;
  TrainingExperimentOptions u = t;
  u.learning_rate = 0.05;
  EXPECT_NE(options_fingerprint(t), options_fingerprint(u));
  // The deadline changes when a run stops, not what its cells contain.
  u = t;
  u.deadline_seconds = 123.0;
  EXPECT_EQ(options_fingerprint(t), options_fingerprint(u));
}

}  // namespace
}  // namespace qbarren
