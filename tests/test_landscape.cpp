// Tests for the cost-landscape scan (paper Fig 1).
#include "qbarren/bp/landscape.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qbarren {
namespace {

LandscapeOptions small_options() {
  LandscapeOptions options;
  options.qubits = 2;
  options.layers = 10;
  options.grid_points = 7;
  options.seed = 1;
  return options;
}

TEST(Landscape, ValidatesOptions) {
  LandscapeOptions bad = small_options();
  bad.grid_points = 1;
  EXPECT_THROW((void)scan_landscape(bad), InvalidArgument);

  bad = small_options();
  bad.lo = 1.0;
  bad.hi = 1.0;
  EXPECT_THROW((void)scan_landscape(bad), InvalidArgument);

  bad = small_options();
  bad.param_a = bad.param_b = 0;
  EXPECT_THROW((void)scan_landscape(bad), InvalidArgument);

  bad = small_options();
  bad.param_b = 100000;
  EXPECT_THROW((void)scan_landscape(bad), InvalidArgument);
}

TEST(Landscape, GridShapeAndAxis) {
  const LandscapeResult result = scan_landscape(small_options());
  EXPECT_EQ(result.axis.size(), 7u);
  EXPECT_EQ(result.values.size(), 49u);
  EXPECT_DOUBLE_EQ(result.axis.front(), 0.0);
  EXPECT_NEAR(result.axis.back(), 2.0 * M_PI, 1e-12);
}

TEST(Landscape, MetricsConsistentWithGrid) {
  const LandscapeResult result = scan_landscape(small_options());
  double mn = 1e9;
  double mx = -1e9;
  for (double v : result.values) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_DOUBLE_EQ(result.min_value, mn);
  EXPECT_DOUBLE_EQ(result.max_value, mx);
  EXPECT_DOUBLE_EQ(result.range, mx - mn);
  EXPECT_GE(result.stddev, 0.0);
}

TEST(Landscape, CostStaysInUnitInterval) {
  const LandscapeResult result = scan_landscape(small_options());
  for (double v : result.values) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Landscape, ValueAtIndexing) {
  const LandscapeResult result = scan_landscape(small_options());
  EXPECT_DOUBLE_EQ(result.value_at(2, 3), result.values[2 * 7 + 3]);
  EXPECT_THROW((void)result.value_at(7, 0), InvalidArgument);
  EXPECT_THROW((void)result.value_at(0, 7), InvalidArgument);
}

TEST(Landscape, DeterministicGivenSeed) {
  const LandscapeResult a = scan_landscape(small_options());
  const LandscapeResult b = scan_landscape(small_options());
  EXPECT_EQ(a.values, b.values);
}

TEST(Landscape, ZeroBackgroundDiffersFromRandom) {
  LandscapeOptions options = small_options();
  const LandscapeResult random_bg = scan_landscape(options);
  options.random_background = false;
  const LandscapeResult zero_bg = scan_landscape(options);
  EXPECT_NE(random_bg.values, zero_bg.values);
}

TEST(Landscape, ZeroBackgroundScanHasKnownStructure) {
  // With all other parameters zero and scanning the first RX/RY pair of
  // qubit 0, the cost at grid point (0, 0) (both scanned angles 0) is 0:
  // the whole circuit is the identity.
  LandscapeOptions options = small_options();
  options.random_background = false;
  const LandscapeResult result = scan_landscape(options);
  EXPECT_NEAR(result.value_at(0, 0), 0.0, 1e-10);
  // And the landscape is non-trivial elsewhere.
  EXPECT_GT(result.range, 0.1);
}

TEST(Landscape, FlattensWithMoreQubits) {
  // Fig 1's qualitative claim, checked quantitatively: the cost range over
  // the same grid shrinks monotonically from 2 to 6 qubits at fixed depth.
  LandscapeOptions options = small_options();
  options.layers = 30;
  options.grid_points = 9;

  std::vector<double> ranges;
  for (const std::size_t q : {2u, 4u, 6u}) {
    options.qubits = q;
    ranges.push_back(scan_landscape(options).range);
  }
  EXPECT_GT(ranges[0], ranges[1]);
  EXPECT_GT(ranges[1], ranges[2]);
}

TEST(Landscape, MetricsTableShape) {
  const LandscapeResult result = scan_landscape(small_options());
  const Table metrics = result.metrics_table();
  EXPECT_EQ(metrics.rows(), 1u);
  EXPECT_EQ(metrics.columns(), 7u);
}

TEST(Landscape, GridTableShape) {
  const LandscapeResult result = scan_landscape(small_options());
  const Table grid = result.grid_table();
  EXPECT_EQ(grid.rows(), 7u);
  EXPECT_EQ(grid.columns(), 8u);  // axis label + 7 value columns
}

TEST(Landscape, FlatnessTableCoversAllWidths) {
  LandscapeOptions options = small_options();
  options.grid_points = 5;
  const Table table = landscape_flatness_table({2, 3}, options);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 5u);
  EXPECT_THROW((void)landscape_flatness_table({}, options),
               InvalidArgument);
}

}  // namespace
}  // namespace qbarren
