// Unit and property tests for the Circuit IR: building, execution,
// inverses, derivatives, and the dense unitary reference path.
#include "qbarren/circuit/circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/printer.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-11;

TEST(Circuit, RequiresAtLeastOneQubit) {
  EXPECT_THROW(Circuit(0), InvalidArgument);
}

TEST(Circuit, RotationAllocatesSequentialParameters) {
  Circuit c(2);
  EXPECT_EQ(c.add_rotation(gates::Axis::kX, 0), 0u);
  EXPECT_EQ(c.add_rotation(gates::Axis::kY, 1), 1u);
  EXPECT_EQ(c.add_rotation(gates::Axis::kZ, 0), 2u);
  EXPECT_EQ(c.num_parameters(), 3u);
  EXPECT_EQ(c.num_operations(), 3u);
}

TEST(Circuit, FixedRotationIsNotTrainable) {
  Circuit c(1);
  c.add_fixed_rotation(gates::Axis::kY, 0, 0.5);
  EXPECT_EQ(c.num_parameters(), 0u);
  EXPECT_EQ(c.num_operations(), 1u);
}

TEST(Circuit, BuilderValidatesQubits) {
  Circuit c(2);
  EXPECT_THROW(c.add_rotation(gates::Axis::kX, 2), InvalidArgument);
  EXPECT_THROW(c.add_hadamard(5), InvalidArgument);
  EXPECT_THROW(c.add_cz(0, 0), InvalidArgument);
  EXPECT_THROW(c.add_cz(0, 2), InvalidArgument);
  EXPECT_THROW(c.add_cnot(1, 1), InvalidArgument);
  EXPECT_THROW(c.add_swap(0, 3), InvalidArgument);
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(3);
  c.add_hadamard(0);
  c.add_cz(0, 1);
  c.add_cnot(1, 2);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_swap(0, 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 3u);
}

TEST(Circuit, ApplyValidatesSizes) {
  Circuit c(2);
  c.add_rotation(gates::Axis::kX, 0);
  StateVector narrow(1);
  StateVector ok(2);
  const std::vector<double> params{0.1};
  const std::vector<double> wrong{0.1, 0.2};
  EXPECT_THROW(c.apply(narrow, params), InvalidArgument);
  EXPECT_THROW(c.apply(ok, wrong), InvalidArgument);
  EXPECT_NO_THROW(c.apply(ok, params));
}

TEST(Circuit, SimulateSingleRotationMatchesAnalytic) {
  // RY(theta)|0> = cos(theta/2)|0> + sin(theta/2)|1>.
  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  const double theta = 0.9;
  const std::vector<double> params{theta};
  const StateVector s = c.simulate(params);
  EXPECT_NEAR(s.amplitude(0).real(), std::cos(theta / 2.0), kTol);
  EXPECT_NEAR(s.amplitude(1).real(), std::sin(theta / 2.0), kTol);
}

TEST(Circuit, EveryOpKindExecutes) {
  Circuit c(3);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_fixed_rotation(gates::Axis::kZ, 1, 0.2);
  c.add_hadamard(0);
  c.add_pauli_x(1);
  c.add_pauli_y(2);
  c.add_pauli_z(0);
  c.add_s(1);
  c.add_t(2);
  c.add_cz(0, 1);
  c.add_cnot(1, 2);
  c.add_swap(0, 2);
  const std::vector<double> params{0.4};
  const StateVector s = c.simulate(params);
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
}

TEST(Circuit, UnitaryReferenceMatchesSimulation) {
  Rng rng(5);
  Circuit c(3);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_rotation(gates::Axis::kY, 1);
  c.add_cz(0, 1);
  c.add_cnot(2, 0);
  c.add_rotation(gates::Axis::kZ, 2);
  c.add_hadamard(1);
  const std::vector<double> params{0.3, -1.1, 2.2};

  const ComplexMatrix u = c.unitary(params);
  EXPECT_TRUE(is_unitary(u, 1e-10));

  // Column 0 of U is U|000>.
  const StateVector s = c.simulate(params);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(u(i, 0) - s.amplitude(i)), 0.0, 1e-10);
  }
}

TEST(Circuit, CnotConventionConsistentBetweenFastAndDensePaths) {
  // |q0 = 1> control set, target q1 flips.
  Circuit c(2);
  c.add_pauli_x(0);
  c.add_cnot(0, 1);
  const StateVector s = c.simulate({});
  EXPECT_NEAR(s.probability(0b11), 1.0, kTol);

  const ComplexMatrix u = c.unitary({});
  EXPECT_NEAR(std::abs(u(3, 0)), 1.0, 1e-10);
}

TEST(Circuit, InverseOpsUndoForward) {
  Rng rng(6);
  Circuit c(3);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_s(1);
  c.add_t(2);
  c.add_hadamard(0);
  c.add_cz(1, 2);
  c.add_cnot(0, 2);
  c.add_swap(1, 2);
  c.add_fixed_rotation(gates::Axis::kY, 1, 0.77);
  const std::vector<double> params{1.3};

  StateVector s(3);
  // Scramble the start state so the test is not trivially about |0...0>.
  s.apply_single_qubit(gates::u3(0.5, 0.2, 0.9), 0);
  s.apply_single_qubit(gates::u3(1.5, -0.2, 0.4), 2);
  const StateVector initial = s;

  c.apply(s, params);
  for (std::size_t k = c.num_operations(); k-- > 0;) {
    c.apply_operation_inverse(k, s, params);
  }
  EXPECT_NEAR(s.fidelity(initial), 1.0, 1e-10);
}

TEST(Circuit, DerivativeRequiresTrainableRotation) {
  Circuit c(1);
  c.add_hadamard(0);
  c.add_rotation(gates::Axis::kY, 0);
  StateVector s(1);
  const std::vector<double> params{0.1};
  EXPECT_THROW(c.apply_operation_derivative(0, s, params), InvalidArgument);
  EXPECT_NO_THROW(c.apply_operation_derivative(1, s, params));
}

TEST(Circuit, OperationIndexValidated) {
  Circuit c(1);
  c.add_hadamard(0);
  StateVector s(1);
  EXPECT_THROW(c.apply_operation(1, s, {}), InvalidArgument);
  EXPECT_THROW(c.apply_operation_inverse(1, s, {}), InvalidArgument);
  EXPECT_THROW(c.apply_operation_derivative(1, s, {}), InvalidArgument);
}

TEST(Circuit, AppendRemapsParameters) {
  Circuit a(2);
  a.add_rotation(gates::Axis::kX, 0);
  Circuit b(2);
  b.add_rotation(gates::Axis::kY, 1);
  b.add_rotation(gates::Axis::kZ, 0);

  a.append(b);
  EXPECT_EQ(a.num_parameters(), 3u);
  EXPECT_EQ(a.num_operations(), 3u);
  EXPECT_EQ(a.operations()[1].param_index, 1u);
  EXPECT_EQ(a.operations()[2].param_index, 2u);
}

TEST(Circuit, AppendRejectsWidthMismatch) {
  Circuit a(2);
  const Circuit b(3);
  EXPECT_THROW(a.append(b), InvalidArgument);
}

TEST(Circuit, AppendEqualsSequentialExecution) {
  Circuit a(2);
  a.add_rotation(gates::Axis::kX, 0);
  a.add_cz(0, 1);
  Circuit b(2);
  b.add_rotation(gates::Axis::kY, 1);

  Circuit combined = a;
  combined.append(b);
  const std::vector<double> params{0.4, 1.2};

  const StateVector via_combined = combined.simulate(params);
  StateVector via_sequence(2);
  a.apply(via_sequence, std::vector<double>{0.4});
  b.apply(via_sequence, std::vector<double>{1.2});
  EXPECT_NEAR(via_combined.fidelity(via_sequence), 1.0, kTol);
}

TEST(Circuit, DepthComputation) {
  Circuit c(3);
  EXPECT_EQ(c.depth(), 0u);
  c.add_hadamard(0);
  EXPECT_EQ(c.depth(), 1u);
  c.add_hadamard(1);  // parallel with the first H
  EXPECT_EQ(c.depth(), 1u);
  c.add_cz(0, 1);  // must follow both
  EXPECT_EQ(c.depth(), 2u);
  c.add_hadamard(2);  // parallel with everything
  EXPECT_EQ(c.depth(), 2u);
  c.add_cz(1, 2);  // follows the first CZ (qubit 1) and H (qubit 2)
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthOfSerialChain) {
  Circuit c(1);
  for (int i = 0; i < 7; ++i) {
    c.add_t(0);
  }
  EXPECT_EQ(c.depth(), 7u);
}

TEST(Circuit, DepthOfTrainingAnsatz) {
  // One Eq 3 layer on n qubits: RX (1) + RY (1) + CZ ladder (n-1 serial
  // on the shared-qubit chain) = n + 1.
  TrainingAnsatzOptions one_layer;
  one_layer.layers = 1;
  EXPECT_EQ(training_ansatz(4, one_layer).depth(), 4u + 1u);

  // Stacked layers overlap under greedy ASAP scheduling (the second
  // layer's early-qubit rotations start while the first layer's ladder is
  // still running down the chain), so two layers cost 9, not 10.
  TrainingAnsatzOptions two_layers;
  two_layers.layers = 2;
  const Circuit c = training_ansatz(4, two_layers);
  EXPECT_EQ(c.depth(), 9u);
  EXPECT_LT(c.depth(), 2u * (4u + 1u));
}

TEST(Circuit, LayerShapeValidation) {
  Circuit c(2);
  EXPECT_FALSE(c.layer_shape().has_value());
  EXPECT_THROW(c.set_layer_shape(LayerShape{0, 4}), InvalidArgument);
  c.set_layer_shape(LayerShape{3, 4});
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->layers, 3u);
}

TEST(Circuit, AppendDropsLayerShape) {
  Circuit a(2);
  a.set_layer_shape(LayerShape{1, 2});
  const Circuit b(2);
  a.append(b);
  EXPECT_FALSE(a.layer_shape().has_value());
}

TEST(Circuit, UnitaryRefusesWideRegisters) {
  const Circuit c(11);
  EXPECT_THROW((void)c.unitary({}), InvalidArgument);
}

TEST(Printer, TextListingContainsOps) {
  Circuit c(2);
  c.add_rotation(gates::Axis::kY, 1);
  c.add_cz(0, 1);
  const std::string text = to_text(c);
  EXPECT_NE(text.find("RY(theta[0]) q[1]"), std::string::npos);
  EXPECT_NE(text.find("CZ q[0], q[1]"), std::string::npos);
  EXPECT_NE(text.find("2 qubits"), std::string::npos);
}

TEST(Printer, QasmDumpIsWellFormed) {
  Circuit c(2);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_hadamard(1);
  c.add_cnot(0, 1);
  const std::string qasm = to_qasm(c, std::vector<double>{0.25});
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("rx(0.25) q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

TEST(Printer, QasmValidatesParameterCount) {
  Circuit c(1);
  c.add_rotation(gates::Axis::kX, 0);
  EXPECT_THROW((void)to_qasm(c, std::vector<double>{}), InvalidArgument);
}

// Property: simulation equals the dense unitary applied to |0...0> for
// random circuits across widths.
class CircuitReference : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CircuitReference, FastPathMatchesDenseUnitary) {
  const std::size_t n = GetParam();
  Rng rng(splitmix64(n + 100));
  Circuit c(n);
  std::vector<double> params;
  for (int step = 0; step < 30; ++step) {
    const std::size_t q = rng.index(n);
    switch (rng.index(5)) {
      case 0:
        c.add_rotation(static_cast<gates::Axis>(rng.index(3)), q);
        params.push_back(rng.uniform(0.0, 2.0 * M_PI));
        break;
      case 1:
        c.add_hadamard(q);
        break;
      case 2:
        c.add_t(q);
        break;
      case 3:
        if (n >= 2) {
          std::size_t p = rng.index(n);
          if (p == q) p = (p + 1) % n;
          c.add_cz(q, p);
        }
        break;
      case 4:
        if (n >= 2) {
          std::size_t p = rng.index(n);
          if (p == q) p = (p + 1) % n;
          c.add_cnot(q, p);
        }
        break;
    }
  }
  const StateVector fast = c.simulate(params);
  const ComplexMatrix u = c.unitary(params);
  EXPECT_TRUE(is_unitary(u, 1e-9));
  for (std::size_t i = 0; i < fast.dimension(); ++i) {
    EXPECT_NEAR(std::abs(u(i, 0) - fast.amplitude(i)), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CircuitReference,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qbarren
