// Tests for the resilient-run infrastructure: atomic writes, cooperative
// cancellation (including the signal bridge), and the checkpoint store.
#include "qbarren/common/run.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "qbarren/common/checkpoint.hpp"

namespace qbarren {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicWrite, CreatesAndOverwrites) {
  const std::string path = temp_path("atomic_create.txt");
  fs::remove(path);

  write_file_atomic(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");

  write_file_atomic(path, "second, longer content\n");
  EXPECT_EQ(read_file(path), "second, longer content\n");

  // A shorter rewrite must not leave a tail of the longer old content.
  write_file_atomic(path, "x");
  EXPECT_EQ(read_file(path), "x");
}

TEST(AtomicWrite, LeavesNoTemporaryBehind) {
  const std::string dir = temp_path("atomic_dir");
  fs::remove_all(dir);
  fs::create_directory(dir);
  write_file_atomic(dir + "/out.txt", "payload");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "out.txt");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicWrite, FailureDoesNotTouchDestination) {
  EXPECT_THROW(write_file_atomic("/no-such-dir-qbarren/x.txt", "data"),
               Error);
  EXPECT_FALSE(fs::exists("/no-such-dir-qbarren/x.txt"));
}

TEST(CancellationToken, FlagAndThrow) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled("unit of work"));

  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.throw_if_cancelled("q=8/init=random");
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("q=8/init=random"),
              std::string::npos);
  }
}

TEST(ScopedSignalCancellation, SigintRequestsCancel) {
  CancellationToken token;
  {
    ScopedSignalCancellation guard(token);
    ASSERT_EQ(std::raise(SIGINT), 0);  // we survive: handler, not default
    EXPECT_TRUE(token.cancelled());
  }
}

TEST(ScopedSignalCancellation, SigtermRequestsCancel) {
  CancellationToken token;
  {
    ScopedSignalCancellation guard(token);
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(token.cancelled());
  }
}

TEST(ScopedSignalCancellation, SecondInstanceRejectedUntilFirstDies) {
  CancellationToken a;
  CancellationToken b;
  {
    ScopedSignalCancellation guard(a);
    EXPECT_THROW(ScopedSignalCancellation{b}, InvalidArgument);
  }
  // The slot is free again after destruction.
  ScopedSignalCancellation guard(b);
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(b.cancelled());
  EXPECT_FALSE(a.cancelled());
}

TEST(CheckpointCell, TypedLookupsThrowCheckpointError) {
  CheckpointCell cell;
  cell.scalars["loss"] = 0.25;
  cell.vectors["history"] = {1.0, 2.0};
  EXPECT_EQ(cell.scalar("loss"), 0.25);
  EXPECT_EQ(cell.vector("history").size(), 2u);
  EXPECT_THROW((void)cell.scalar("missing"), CheckpointError);
  EXPECT_THROW((void)cell.vector("missing"), CheckpointError);
}

TEST(Checkpoint, ValidatesFingerprintAndKeys) {
  EXPECT_THROW(Checkpoint("", ""), InvalidArgument);
  EXPECT_THROW(Checkpoint("", "two\nlines"), InvalidArgument);

  Checkpoint ckpt("", "fp");
  EXPECT_THROW(ckpt.put_cell("", CheckpointCell{}), InvalidArgument);
  EXPECT_THROW(ckpt.put_cell("a\nb", CheckpointCell{}), InvalidArgument);
  CheckpointCell bad_name;
  bad_name.scalars["no spaces allowed"] = 1.0;
  EXPECT_THROW(ckpt.put_cell("cell", bad_name), InvalidArgument);
}

TEST(Checkpoint, RoundTripsDoublesBitForBit) {
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  fs::remove(path);

  const std::vector<double> tricky = {
      0.1,
      -0.0,
      3.141592653589793,
      1e-300,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -1.0 / 3.0,
  };
  Checkpoint ckpt(path, "experiment/v1;seed=42");
  CheckpointCell cell;
  cell.scalars["variance"] = 0.123456789012345678;
  cell.vectors["samples"] = tricky;
  ckpt.put_cell("q=8/init=xavier normal", cell);  // keys may contain spaces
  ckpt.put_cell("q=8/init=random", CheckpointCell{});
  ckpt.flush();

  const Checkpoint loaded = Checkpoint::load(path, "experiment/v1;seed=42");
  EXPECT_EQ(loaded.cell_count(), 2u);
  ASSERT_TRUE(loaded.has_cell("q=8/init=xavier normal"));
  const CheckpointCell* got = loaded.find_cell("q=8/init=xavier normal");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->scalar("variance"), 0.123456789012345678);
  const std::vector<double>& back = got->vector("samples");
  ASSERT_EQ(back.size(), tricky.size());
  for (std::size_t i = 0; i < tricky.size(); ++i) {
    EXPECT_EQ(back[i], tricky[i]) << "index " << i;
  }
  EXPECT_TRUE(std::signbit(back[1]));  // -0.0 keeps its sign
  EXPECT_EQ(loaded.find_cell("q=9/init=random"), nullptr);
}

TEST(Checkpoint, StaleFingerprintRejected) {
  const std::string path = temp_path("ckpt_stale.ckpt");
  Checkpoint ckpt(path, "options-A");
  ckpt.put_cell("cell", CheckpointCell{});
  ckpt.flush();
  try {
    (void)Checkpoint::load(path, "options-B");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("options-A"), std::string::npos);
    EXPECT_NE(what.find("options-B"), std::string::npos);
  }
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW((void)Checkpoint::load(temp_path("no_such.ckpt"), "fp"),
               CheckpointError);
}

TEST(Checkpoint, WrongVersionRejected) {
  const std::string path = temp_path("ckpt_version.ckpt");
  write_file_atomic(path, "qbarren-checkpoint 999\nfingerprint fp\nend 0\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
  write_file_atomic(path, "not-a-checkpoint\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string path = temp_path("ckpt_truncated.ckpt");
  Checkpoint ckpt(path, "fp");
  CheckpointCell cell;
  cell.scalars["x"] = 1.5;
  ckpt.put_cell("a", cell);
  ckpt.put_cell("b", cell);
  ckpt.flush();

  // Drop the trailing "end <count>" line: simulates a torn write.
  std::string bytes = ckpt.serialize();
  bytes.erase(bytes.rfind("end "));
  write_file_atomic(path, bytes);
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);

  // A wrong cell count is also caught.
  bytes = ckpt.serialize();
  const auto pos = bytes.rfind("end 2");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 5, "end 7");
  write_file_atomic(path, bytes);
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
}

TEST(Checkpoint, CorruptLinesRejected) {
  const std::string path = temp_path("ckpt_corrupt.ckpt");
  const std::string header = "qbarren-checkpoint 1\nfingerprint fp\n";
  write_file_atomic(path, header + "scalar x 1.0\nend 0\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
  write_file_atomic(path, header + "cell a\nscalar x oops\nendcell\nend 1\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
  write_file_atomic(path, header + "cell a\nbogus-tag\nendcell\nend 1\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
  write_file_atomic(path, header + "cell a\nend 0\n");
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);
}

TEST(Checkpoint, SalvageQuarantinesTornWriteAndKeepsCompleteCells) {
  const std::string path = temp_path("ckpt_salvage.ckpt");
  const std::string quarantine = path + ".corrupt";
  fs::remove(path);
  fs::remove(quarantine);

  Checkpoint ckpt(path, "fp");
  CheckpointCell cell;
  cell.scalars["x"] = 1.5;
  cell.vectors["v"] = {0.25, -3.0};
  ckpt.put_cell("a", cell);
  ckpt.put_cell("b", cell);
  ckpt.put_cell("c", cell);
  ckpt.flush();

  // Hand-truncate mid-cell: a death during flush tears the write after
  // cell "b" completes but before "c" finishes.
  std::string bytes = ckpt.serialize();
  const auto torn = bytes.find("cell c");
  ASSERT_NE(torn, std::string::npos);
  bytes.resize(torn + std::string("cell c\nscalar x").size());
  write_file_atomic(path, bytes);
  EXPECT_THROW((void)Checkpoint::load(path, "fp"), CheckpointError);

  CheckpointSalvage salvage;
  Checkpoint recovered = Checkpoint::open_salvaging(path, "fp", &salvage);
  EXPECT_TRUE(salvage.quarantined);
  EXPECT_EQ(salvage.quarantine_path, quarantine);
  EXPECT_FALSE(salvage.reason.empty());
  EXPECT_EQ(salvage.salvaged_cells, 2u);
  EXPECT_TRUE(recovered.has_cell("a"));
  EXPECT_TRUE(recovered.has_cell("b"));
  EXPECT_FALSE(recovered.has_cell("c"));  // the torn cell is recomputed
  EXPECT_EQ(recovered.find_cell("a")->scalar("x"), 1.5);

  // The damaged bytes survive as evidence, and the store is writable
  // again: re-recording the lost cell yields a cleanly loadable file.
  EXPECT_TRUE(fs::exists(quarantine));
  EXPECT_EQ(read_file(quarantine), bytes);
  recovered.record_cell("c", cell);
  const Checkpoint reloaded = Checkpoint::load(path, "fp");
  EXPECT_EQ(reloaded.cell_count(), 3u);
}

TEST(Checkpoint, SalvageKeepsNothingFromForeignFingerprint) {
  const std::string path = temp_path("ckpt_salvage_foreign.ckpt");
  fs::remove(path);
  Checkpoint other(path, "other-fp");
  CheckpointCell cell;
  cell.scalars["x"] = 2.0;
  other.record_cell("a", cell);

  // A store written under different options must not leak cells into this
  // run, even through the tolerant loader — it is quarantined wholesale.
  CheckpointSalvage salvage;
  const Checkpoint recovered =
      Checkpoint::open_salvaging(path, "fp", &salvage);
  EXPECT_TRUE(salvage.quarantined);
  EXPECT_EQ(salvage.salvaged_cells, 0u);
  EXPECT_EQ(recovered.cell_count(), 0u);
}

TEST(Checkpoint, SalvageOfCleanOrMissingStoreIsTransparent) {
  const std::string path = temp_path("ckpt_salvage_clean.ckpt");
  fs::remove(path);

  // Missing file: fresh store, no quarantine.
  CheckpointSalvage salvage;
  Checkpoint fresh = Checkpoint::open_salvaging(path, "fp", &salvage);
  EXPECT_FALSE(salvage.quarantined);
  EXPECT_EQ(fresh.cell_count(), 0u);

  // Intact file: loads exactly like the strict loader.
  fresh.record_cell("a", CheckpointCell{});
  const Checkpoint loaded = Checkpoint::open_salvaging(path, "fp", &salvage);
  EXPECT_FALSE(salvage.quarantined);
  EXPECT_TRUE(salvage.reason.empty());
  EXPECT_EQ(loaded.cell_count(), 1u);
  EXPECT_FALSE(fs::exists(path + ".corrupt"));
}

TEST(Checkpoint, OpenResumeSemantics) {
  const std::string path = temp_path("ckpt_open.ckpt");
  fs::remove(path);

  // resume=true with no file: a fresh store, not an error.
  Checkpoint fresh = Checkpoint::open(path, "fp", /*resume=*/true);
  EXPECT_EQ(fresh.cell_count(), 0u);
  fresh.put_cell("done", CheckpointCell{});
  fresh.flush();

  // resume=true with a file: cells come back.
  const Checkpoint resumed = Checkpoint::open(path, "fp", /*resume=*/true);
  EXPECT_EQ(resumed.cell_count(), 1u);
  EXPECT_TRUE(resumed.has_cell("done"));

  // resume=false ignores the file and starts empty.
  const Checkpoint restarted = Checkpoint::open(path, "fp", /*resume=*/false);
  EXPECT_EQ(restarted.cell_count(), 0u);

  // resume=true against a stale file still validates the fingerprint.
  EXPECT_THROW((void)Checkpoint::open(path, "other-fp", /*resume=*/true),
               CheckpointError);
}

TEST(Checkpoint, InMemoryStoreNeverTouchesDisk) {
  Checkpoint ckpt("", "fp");
  CheckpointCell cell;
  cell.scalars["x"] = 2.0;
  ckpt.put_cell("a", cell);
  EXPECT_NO_THROW(ckpt.flush());  // no path, no I/O
  EXPECT_TRUE(ckpt.has_cell("a"));
  EXPECT_EQ(ckpt.path(), "");
}

TEST(Checkpoint, RecordCellPutsAndFlushesAtomically) {
  const std::string path = temp_path("ckpt_record.ckpt");
  fs::remove(path);
  Checkpoint ckpt(path, "fp");
  CheckpointCell cell;
  cell.scalars["v"] = 1.5;
  ckpt.record_cell("a", cell);

  // The cell is already on disk: no explicit flush() needed.
  const Checkpoint loaded = Checkpoint::load(path, "fp");
  EXPECT_EQ(loaded.cell_count(), 1u);
  ASSERT_TRUE(loaded.has_cell("a"));
  EXPECT_EQ(loaded.find_cell("a")->scalar("v"), 1.5);
}

TEST(Checkpoint, ConcurrentProducersLeaveAnUncorruptedStore) {
  // Hammer one store from 8 threads, the way parallel experiment workers
  // record their cells, then check the result byte-matches a store built
  // serially from the same cells.
  const std::string path = temp_path("ckpt_hammer.ckpt");
  fs::remove(path);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCellsPerThread = 16;

  Checkpoint concurrent(path, "fp");
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&concurrent, t] {
      for (std::size_t i = 0; i < kCellsPerThread; ++i) {
        CheckpointCell cell;
        cell.scalars["value"] =
            static_cast<double>(t) + static_cast<double>(i) / 100.0;
        cell.vectors["trace"] = {static_cast<double>(t),
                                 static_cast<double>(i)};
        concurrent.record_cell(
            "t=" + std::to_string(t) + "/i=" + std::to_string(i), cell);
      }
    });
  }
  for (std::thread& p : producers) p.join();

  Checkpoint serial("", "fp");
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kCellsPerThread; ++i) {
      CheckpointCell cell;
      cell.scalars["value"] =
          static_cast<double>(t) + static_cast<double>(i) / 100.0;
      cell.vectors["trace"] = {static_cast<double>(t),
                               static_cast<double>(i)};
      serial.put_cell("t=" + std::to_string(t) + "/i=" + std::to_string(i),
                      cell);
    }
  }

  EXPECT_EQ(concurrent.cell_count(), kThreads * kCellsPerThread);
  EXPECT_EQ(concurrent.serialize(), serial.serialize());

  // The last on-disk flush is a complete, loadable store too.
  const Checkpoint loaded = Checkpoint::load(path, "fp");
  EXPECT_EQ(loaded.cell_count(), kThreads * kCellsPerThread);
}

TEST(Checkpoint, SerializeIsDeterministic) {
  Checkpoint a("", "fp");
  Checkpoint b("", "fp");
  CheckpointCell cell;
  cell.scalars["y"] = 1.0;
  cell.scalars["x"] = 2.0;
  // Insertion order differs; std::map ordering makes the bytes identical.
  a.put_cell("k1", cell);
  a.put_cell("k0", cell);
  b.put_cell("k0", cell);
  b.put_cell("k1", cell);
  EXPECT_EQ(a.serialize(), b.serialize());
}

}  // namespace
}  // namespace qbarren
