// Tests for noisy circuit execution and noisy gradients.
#include "qbarren/dsim/noisy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

TEST(NoiseModel, EmptyAndFactories) {
  const NoiseModel none;
  EXPECT_TRUE(none.empty());
  const NoiseModel dep = make_depolarizing_model(0.01, 0.02);
  EXPECT_FALSE(dep.empty());
  ASSERT_TRUE(dep.single_qubit.has_value());
  ASSERT_TRUE(dep.two_qubit.has_value());
  EXPECT_EQ(dep.two_qubit->num_qubits(), 2u);
}

TEST(SimulateNoisy, NoiselessMatchesStateVector) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  Rng rng(2);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);

  const NoiseModel none;
  const DensityMatrix rho = simulate_noisy(c, params, none);
  const StateVector psi = c.simulate(params);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
  for (std::size_t i = 0; i < psi.dimension(); ++i) {
    EXPECT_NEAR(rho.probability(i), psi.probability(i), 1e-9);
  }
}

TEST(SimulateNoisy, NoiseReducesPurity) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  Rng rng(3);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  const DensityMatrix rho =
      simulate_noisy(c, params, make_depolarizing_model(0.02, 0.05));
  EXPECT_LT(rho.purity(), 0.999);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
}

TEST(SimulateNoisy, SingleQubitChannelFallsBackOnTwoQubitGates) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_cnot(0, 1);
  NoiseModel model;
  model.single_qubit = channels::depolarizing(0.1);
  // two_qubit unset: single-qubit channel applies to both CNOT qubits.
  const DensityMatrix rho = simulate_noisy(c, {}, model);
  EXPECT_LT(rho.purity(), 1.0);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(NoisyExpectation, IdentityCostRisesWithNoise) {
  // At theta = 0 the noiseless identity cost is exactly 0; depolarizing
  // noise leaks population out of |0...0> and raises it.
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  const GlobalZeroObservable obs(3);
  const std::vector<double> zeros(c.num_parameters(), 0.0);

  const double noiseless = noisy_expectation(c, zeros, obs, NoiseModel{});
  EXPECT_NEAR(noiseless, 0.0, 1e-10);

  const double p01 =
      noisy_expectation(c, zeros, obs, make_depolarizing_model(0.01, 0.01));
  const double p05 =
      noisy_expectation(c, zeros, obs, make_depolarizing_model(0.05, 0.05));
  EXPECT_GT(p01, 1e-4);
  EXPECT_GT(p05, p01);
}

TEST(NoisyGradient, MatchesExactEngineWithoutNoise) {
  TrainingAnsatzOptions options;
  options.layers = 1;
  const Circuit c = training_ansatz(2, options);
  const GlobalZeroObservable obs(2);
  Rng rng(5);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);

  const ParameterShiftEngine exact;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double noisy = noisy_parameter_shift_partial(c, params, obs,
                                                       NoiseModel{}, i);
    EXPECT_NEAR(noisy, exact.partial(c, obs, params, i), 1e-9) << i;
  }
}

TEST(NoisyGradient, MatchesFiniteDifferenceUnderNoise) {
  // Parameter-shift stays exact for noisy costs (channels carry no
  // trainable parameter); cross-check against central differences of the
  // noisy expectation.
  Circuit c(2);
  c.add_rotation(gates::Axis::kY, 0);
  c.add_cz(0, 1);
  c.add_rotation(gates::Axis::kX, 1);
  const GlobalZeroObservable obs(2);
  const NoiseModel noise = make_depolarizing_model(0.05, 0.08);
  const std::vector<double> params{0.7, -0.4};

  for (std::size_t i = 0; i < params.size(); ++i) {
    const double shift =
        noisy_parameter_shift_partial(c, params, obs, noise, i);
    const double h = 1e-5;
    std::vector<double> work = params;
    work[i] = params[i] + h;
    const double plus = noisy_expectation(c, work, obs, noise);
    work[i] = params[i] - h;
    const double minus = noisy_expectation(c, work, obs, noise);
    EXPECT_NEAR(shift, (plus - minus) / (2.0 * h), 1e-6) << i;
  }
}

TEST(NoisyGradient, NoiseShrinksGradientMagnitude) {
  // Noise-induced flattening: depolarizing noise contracts expectation
  // values toward a constant, shrinking the sampled gradient variance
  // (cf. noise-induced barren plateaus).
  Rng structure_rng(8);
  VarianceAnsatzOptions ansatz_options;
  ansatz_options.layers = 8;
  const Circuit c = variance_ansatz(4, structure_rng, ansatz_options);
  const GlobalZeroObservable obs(4);
  const auto init = make_initializer("random");

  std::vector<double> clean_grads;
  std::vector<double> noisy_grads;
  const NoiseModel noise = make_depolarizing_model(0.03, 0.05);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    Rng prng = Rng(100).child(trial);
    const auto params = init->initialize(c, prng);
    const std::size_t last = c.num_parameters() - 1;
    clean_grads.push_back(
        noisy_parameter_shift_partial(c, params, obs, NoiseModel{}, last));
    noisy_grads.push_back(
        noisy_parameter_shift_partial(c, params, obs, noise, last));
  }
  EXPECT_LT(sample_variance(noisy_grads), sample_variance(clean_grads));
}

TEST(NoisyGradient, ValidatesIndex) {
  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  const GlobalZeroObservable obs(1);
  EXPECT_THROW((void)noisy_parameter_shift_partial(
                   c, std::vector<double>{0.1}, obs, NoiseModel{}, 1),
               InvalidArgument);
}

}  // namespace
}  // namespace qbarren
