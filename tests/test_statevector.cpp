// Unit and property tests for the state-vector simulator, including
// cross-checks of the fast bit-twiddling kernels against the dense
// embed_* reference path.
#include "qbarren/qsim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/rng.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, StartsInZeroState) {
  const StateVector s(3);
  EXPECT_EQ(s.num_qubits(), 3u);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_EQ(s.amplitude(0), (Complex{1.0, 0.0}));
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(s.amplitude(i), (Complex{0.0, 0.0}));
  }
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
}

TEST(StateVector, RejectsBadWidths) {
  EXPECT_THROW(StateVector(0), InvalidArgument);
  EXPECT_THROW(StateVector(29), InvalidArgument);
}

TEST(StateVector, ExplicitAmplitudesChecked) {
  EXPECT_THROW(StateVector(2, std::vector<Complex>(3)), InvalidArgument);
  EXPECT_THROW(StateVector(2, std::vector<Complex>(8)), InvalidArgument);
  const StateVector s(1, {Complex{0.0, 0.0}, Complex{1.0, 0.0}});
  EXPECT_EQ(s.probability(1), 1.0);
}

TEST(StateVector, ResetRestoresZeroState) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.reset();
  EXPECT_EQ(s.amplitude(0), (Complex{1.0, 0.0}));
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
}

TEST(StateVector, PauliXFlipsTargetQubit) {
  StateVector s(3);
  s.apply_single_qubit(gates::pauli_x(), 1);
  EXPECT_NEAR(s.probability(0b010), 1.0, kTol);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_single_qubit(gates::hadamard(), 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(s.probability(i), 0.25, kTol);
  }
}

TEST(StateVector, BellStateViaControlledX) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_controlled(gates::pauli_x(), 0, 1);
  EXPECT_NEAR(s.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(s.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(s.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(s.probability(0b10), 0.0, kTol);
}

TEST(StateVector, CzFlipsPhaseOnlyOnBothOnes) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_single_qubit(gates::hadamard(), 1);
  s.apply_cz(0, 1);
  EXPECT_NEAR(s.amplitude(0b11).real(), -0.5, kTol);
  EXPECT_NEAR(s.amplitude(0b00).real(), 0.5, kTol);
  EXPECT_NEAR(s.amplitude(0b01).real(), 0.5, kTol);
  EXPECT_NEAR(s.amplitude(0b10).real(), 0.5, kTol);
}

TEST(StateVector, CzIsSymmetric) {
  Rng rng(3);
  StateVector a(3);
  StateVector b(3);
  // Prepare an arbitrary product state on both copies.
  for (std::size_t q = 0; q < 3; ++q) {
    const auto u = gates::u3(rng.uniform(0.0, M_PI), rng.uniform(0.0, 2.0),
                             rng.uniform(0.0, 2.0));
    a.apply_single_qubit(u, q);
    b.apply_single_qubit(u, q);
  }
  a.apply_cz(0, 2);
  b.apply_cz(2, 0);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(StateVector, QubitIndexValidation) {
  StateVector s(2);
  EXPECT_THROW(s.apply_single_qubit(gates::pauli_x(), 2), InvalidArgument);
  EXPECT_THROW(s.apply_cz(0, 2), InvalidArgument);
  EXPECT_THROW(s.apply_cz(1, 1), InvalidArgument);
  EXPECT_THROW(s.apply_controlled(gates::pauli_x(), 0, 0), InvalidArgument);
  EXPECT_THROW(s.apply_two_qubit(gates::cz(), 1, 1), InvalidArgument);
  EXPECT_THROW((void)s.probability(4), InvalidArgument);
  EXPECT_THROW((void)s.amplitude(4), InvalidArgument);
  EXPECT_THROW((void)s.probability_one(2), InvalidArgument);
}

TEST(StateVector, MatrixShapeValidation) {
  StateVector s(2);
  EXPECT_THROW(s.apply_single_qubit(gates::cz(), 0), InvalidArgument);
  EXPECT_THROW(s.apply_two_qubit(gates::pauli_x(), 0, 1), InvalidArgument);
}

TEST(StateVector, SingleQubitKernelMatchesDenseReference) {
  Rng rng(7);
  for (std::size_t target = 0; target < 3; ++target) {
    StateVector fast(3);
    // Arbitrary initial state.
    std::vector<Complex> amps(8);
    for (auto& a : amps) a = Complex{rng.normal(), rng.normal()};
    fast = StateVector(3, amps);
    fast.normalize();
    const StateVector initial = fast;

    const ComplexMatrix u = gates::u3(0.7, 0.3, -0.9);
    fast.apply_single_qubit(u, target);

    const ComplexMatrix full = embed_single_qubit(u, target, 3);
    const std::vector<Complex> expected = full.apply(initial.amplitudes());
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(std::abs(fast.amplitudes()[i] - expected[i]), 0.0, 1e-11)
          << "target " << target << " index " << i;
    }
  }
}

TEST(StateVector, TwoQubitKernelMatchesDenseReference) {
  Rng rng(8);
  const std::vector<std::pair<std::size_t, std::size_t>> pairs{
      {0, 1}, {0, 2}, {1, 2}};
  for (const auto& [lo, hi] : pairs) {
    std::vector<Complex> amps(8);
    for (auto& a : amps) a = Complex{rng.normal(), rng.normal()};
    StateVector fast(3, amps);
    fast.normalize();
    const StateVector initial = fast;

    const ComplexMatrix u = gates::crz(1.234);
    fast.apply_two_qubit(u, lo, hi);

    const ComplexMatrix full = embed_two_qubit(u, lo, hi, 3);
    const std::vector<Complex> expected = full.apply(initial.amplitudes());
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(std::abs(fast.amplitudes()[i] - expected[i]), 0.0, 1e-11)
          << "pair (" << lo << "," << hi << ") index " << i;
    }
  }
}

TEST(StateVector, ControlledKernelMatchesCnotMatrix) {
  // apply_controlled(X, c=1, t=0) must equal the embedded CNOT with control
  // mapped to matrix bit 0.
  std::vector<Complex> amps{{0.1, 0.2}, {0.3, -0.1}, {0.5, 0.0}, {0.2, 0.4}};
  StateVector fast(2, amps);
  fast.normalize();
  StateVector ref = fast;

  fast.apply_controlled(gates::pauli_x(), 1, 0);
  // gates::cnot() has control = low-order matrix bit; here control is
  // qubit 1, so embed with q_low = 1 (control), q_high = 0 (target).
  const ComplexMatrix full = embed_two_qubit(gates::cnot(), 1, 0, 2);
  const std::vector<Complex> expected = full.apply(ref.amplitudes());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(fast.amplitudes()[i] - expected[i]), 0.0, 1e-12);
  }
}

TEST(StateVector, ProbabilityOneSumsCorrectly) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);  // qubit 0 in |+>
  EXPECT_NEAR(s.probability_one(0), 0.5, kTol);
  EXPECT_NEAR(s.probability_one(1), 0.0, kTol);
}

TEST(StateVector, ProbabilitiesSumToOne) {
  StateVector s(3);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_single_qubit(gates::u3(0.3, 1.0, 2.0), 2);
  const auto probs = s.probabilities();
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, kTol);
}

TEST(StateVector, InnerProductAndFidelity) {
  StateVector a(1);
  StateVector b(1);
  b.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, kTol);
  EXPECT_NEAR(a.fidelity(a), 1.0, kTol);

  StateVector plus(1);
  plus.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(a.fidelity(plus), 0.5, kTol);

  const StateVector wide(2);
  EXPECT_THROW((void)a.inner_product(wide), InvalidArgument);
}

TEST(StateVector, ExpectationZ) {
  StateVector s(2);
  EXPECT_NEAR(s.expectation_z(0), 1.0, kTol);
  s.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(s.expectation_z(0), -1.0, kTol);
  s.apply_single_qubit(gates::hadamard(), 1);
  EXPECT_NEAR(s.expectation_z(1), 0.0, kTol);
}

TEST(StateVector, NormalizeZeroVectorThrows) {
  StateVector s(1, {Complex{0.0, 0.0}, Complex{0.0, 0.0}});
  EXPECT_THROW(s.normalize(), NumericalError);
}

TEST(StateVector, NormalizeRescales) {
  StateVector s(1, {Complex{3.0, 0.0}, Complex{4.0, 0.0}});
  s.normalize();
  EXPECT_NEAR(s.norm_squared(), 1.0, kTol);
  EXPECT_NEAR(s.probability(0), 9.0 / 25.0, kTol);
}

// Property sweep: the controlled-gate kernel matches the dense embedded
// CNOT for every (control, target) pair on a 4-qubit register.
class ControlledPairs
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(ControlledPairs, MatchesDenseReference) {
  const auto [control, target] = GetParam();
  Rng rng(splitmix64(control * 16 + target));
  std::vector<Complex> amps(16);
  for (auto& a : amps) a = Complex{rng.normal(), rng.normal()};
  StateVector fast(4, amps);
  fast.normalize();
  const StateVector initial = fast;

  fast.apply_controlled(gates::pauli_x(), control, target);
  const ComplexMatrix full =
      embed_two_qubit(gates::cnot(), control, target, 4);
  const std::vector<Complex> expected = full.apply(initial.amplitudes());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(std::abs(fast.amplitudes()[i] - expected[i]), 0.0, 1e-11)
        << "c=" << control << " t=" << target << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ControlledPairs,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(0, 1),
                      std::make_pair<std::size_t, std::size_t>(1, 0),
                      std::make_pair<std::size_t, std::size_t>(0, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 0),
                      std::make_pair<std::size_t, std::size_t>(1, 2),
                      std::make_pair<std::size_t, std::size_t>(2, 1),
                      std::make_pair<std::size_t, std::size_t>(2, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 2),
                      std::make_pair<std::size_t, std::size_t>(1, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 1)));

// Property sweep: random circuits of unitary kernels preserve the norm on
// registers of every width.
class NormPreservation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NormPreservation, RandomGateSequencePreservesNorm) {
  const std::size_t n = GetParam();
  Rng rng(splitmix64(n));
  StateVector s(n);
  for (int step = 0; step < 200; ++step) {
    const std::size_t q = rng.index(n);
    switch (rng.index(4)) {
      case 0:
        s.apply_single_qubit(
            gates::rotation(static_cast<gates::Axis>(rng.index(3)),
                            rng.uniform(0.0, 2.0 * M_PI)),
            q);
        break;
      case 1:
        s.apply_single_qubit(gates::hadamard(), q);
        break;
      case 2: {
        if (n >= 2) {
          std::size_t p = rng.index(n);
          if (p == q) p = (p + 1) % n;
          s.apply_cz(q, p);
        }
        break;
      }
      case 3: {
        if (n >= 2) {
          std::size_t p = rng.index(n);
          if (p == q) p = (p + 1) % n;
          s.apply_controlled(gates::pauli_x(), q, p);
        }
        break;
      }
    }
  }
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, NormPreservation,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 12));

}  // namespace
}  // namespace qbarren
