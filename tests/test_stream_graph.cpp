// Tests for the static RNG stream-graph auditor (analysis/stream_graph.hpp)
// and its serve bridge (serve/audit.hpp): the graph must mirror the
// runners' derivations exactly, every paper configuration must audit
// clean, and each QD100-QD103 rule needs a fixture that fires it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qbarren/analysis/stream_graph.hpp"
#include "qbarren/analysis/preflight.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/serve/audit.hpp"
#include "qbarren/serve/protocol.hpp"

namespace qbarren {
namespace {

std::size_t count_code(const Diagnostics& diagnostics,
                       const std::string& code) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const Diagnostics& diagnostics, const std::string& code) {
  return count_code(diagnostics, code) > 0;
}

std::vector<std::string> paper_names() {
  std::vector<std::string> names;
  for (const auto& init : paper_initializers(FanMode::kLayerTensor)) {
    names.push_back(init->name());
  }
  return names;
}

const StreamLeaf* find_leaf(const StreamGraph& graph, StreamRole role,
                            const std::vector<std::uint64_t>& path) {
  for (const StreamLeaf& leaf : graph.leaves) {
    if (leaf.role == role && leaf.path == path) return &leaf;
  }
  return nullptr;
}

// --- derivation fidelity ----------------------------------------------------

TEST(StreamGraph, DeriveChildSeedMatchesRngChild) {
  const Rng root(42);
  EXPECT_EQ(root.child(0).seed(), derive_child_seed(42, 0));
  EXPECT_EQ(root.child(7).seed(), derive_child_seed(42, 7));
  EXPECT_EQ(root.child(3).child(9).seed(),
            derive_child_seed(derive_child_seed(42, 3), 9));
}

TEST(StreamGraph, VarianceGraphMirrorsRunnerDerivation) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4};
  options.circuits_per_point = 3;
  options.seed = 42;
  const StreamGraph graph = variance_stream_graph(options);
  const std::size_t inits = paper_names().size();

  EXPECT_EQ(graph.root_seed, 42u);
  EXPECT_EQ(graph.fingerprint, options_fingerprint(options));
  EXPECT_EQ(graph.cells.size(), 2 * inits);
  // One structure leaf per (qubit point, circuit), one param leaf per
  // (qubit point, circuit, initializer).
  EXPECT_EQ(graph.leaves.size(), 2 * 3 * (1 + inits));

  // compute_variance_cell derives: q_stream = root.child(qi),
  // circuit_stream = q_stream.child(2i), structure = .child(0),
  // param(t) = .child(1 + t).
  const Rng root(options.seed);
  const StreamLeaf* structure =
      find_leaf(graph, StreamRole::kStructure, {1, 4, 0});
  ASSERT_NE(structure, nullptr);
  EXPECT_EQ(structure->seed, root.child(1).child(4).child(0).seed());
  EXPECT_TRUE(structure->shared_by_design);
  EXPECT_EQ(structure->cell, "q=4/init=*");

  const StreamLeaf* param =
      find_leaf(graph, StreamRole::kParam, {0, 2, 1 + 5});
  ASSERT_NE(param, nullptr);
  EXPECT_EQ(param->seed, root.child(0).child(2).child(6).seed());
  EXPECT_FALSE(param->shared_by_design);
  EXPECT_EQ(param->cell, "q=2/init=" + paper_names()[5]);
}

TEST(StreamGraph, TrainingGraphMirrorsRunnerDerivation) {
  TrainingExperimentOptions options;
  options.seed = 7;
  const StreamGraph graph = training_stream_graph(options);
  const std::vector<std::string> names = paper_names();
  ASSERT_EQ(graph.leaves.size(), names.size());
  // run_training_cell: param_rng = Rng(seed).child(t).
  for (std::size_t t = 0; t < names.size(); ++t) {
    EXPECT_EQ(graph.leaves[t].seed, Rng(7).child(t).seed());
    EXPECT_EQ(graph.leaves[t].cell, "init=" + names[t]);
  }
}

TEST(StreamGraph, SweepGraphsUseRunnersSeedLadder) {
  TrainingSweepOptions options;
  options.base.seed = 123;
  options.repetitions = 4;
  const std::vector<StreamGraph> graphs = sweep_stream_graphs(options);
  ASSERT_EQ(graphs.size(), 4u);
  for (std::size_t rep = 0; rep < 4; ++rep) {
    // run_training_sweep: rep seed = splitmix64(base.seed ^ (rep + 1)).
    EXPECT_EQ(graphs[rep].root_seed, splitmix64(123u ^ (rep + 1)));
    EXPECT_EQ(graphs[rep].label, "rep=" + std::to_string(rep));
    // Cells carry the sweep's per-repetition namespace.
    ASSERT_FALSE(graphs[rep].cells.empty());
    EXPECT_EQ(graphs[rep].cells.front().rfind(graphs[rep].label + "/", 0),
              0u);
  }
}

TEST(StreamGraph, EngineLadderIsMetadataOnly) {
  VarianceExperimentOptions options;
  options.gradient_engine = "adjoint";
  StreamGraph graph = variance_stream_graph(options);
  ASSERT_EQ(graph.engine_ladder.size(), 2u);
  EXPECT_EQ(graph.engine_ladder[0], "adjoint");
  EXPECT_EQ(graph.engine_ladder[1], "parameter-shift");
  // A retry replays the same leaves: changing the ladder must not change
  // any derived seed.
  VarianceExperimentOptions fallback = options;
  fallback.gradient_engine = "parameter-shift";
  const StreamGraph other = variance_stream_graph(fallback);
  ASSERT_EQ(graph.leaves.size(), other.leaves.size());
  for (std::size_t i = 0; i < graph.leaves.size(); ++i) {
    EXPECT_EQ(graph.leaves[i].seed, other.leaves[i].seed);
  }
}

// --- QD100: stream collisions -----------------------------------------------

TEST(StreamGraphQD100, CleanOnEveryPaperConfiguration) {
  // The full Fig 5a grid: q = 2..10, 200 circuits, 50 layers.
  VarianceExperimentOptions variance;
  variance.qubit_counts = {2, 4, 6, 8, 10};
  variance.circuits_per_point = 200;
  EXPECT_TRUE(audit_stream_graph(variance_stream_graph(variance)).empty());

  TrainingExperimentOptions training;
  EXPECT_TRUE(audit_stream_graph(training_stream_graph(training)).empty());

  TrainingSweepOptions sweep;
  sweep.repetitions = 5;
  EXPECT_TRUE(audit_stream_graphs(sweep_stream_graphs(sweep)).empty());
}

TEST(StreamGraphQD100, FlagsCollidingLeaves) {
  StreamGraph graph;
  graph.label = "forged";
  graph.leaves.push_back({StreamRole::kParam, "a", {0}, 99, false});
  graph.leaves.push_back({StreamRole::kParam, "b", {1}, 99, false});
  const Diagnostics diagnostics = audit_stream_graph(graph);
  ASSERT_EQ(count_code(diagnostics, "QD100"), 1u);
  EXPECT_EQ(diagnostics.front().severity, Severity::kError);
}

// --- QD101: cross-run seed aliasing ----------------------------------------

TEST(StreamGraphQD101, IdenticalFingerprintsAreErrors) {
  TrainingExperimentOptions base;
  base.seed = 7;
  const std::vector<StreamGraph> graphs = {
      training_stream_graph(base, "rep=0"),
      training_stream_graph(base, "rep=1"),
  };
  const Diagnostics diagnostics = audit_stream_graphs(graphs);
  ASSERT_TRUE(has_code(diagnostics, "QD101"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StreamGraphQD101, SharedRootUnderDifferentOptionsIsWarning) {
  TrainingExperimentOptions a;
  a.seed = 7;
  TrainingExperimentOptions b = a;
  b.layers += 1;  // different fingerprint, same root seed
  const Diagnostics diagnostics = audit_stream_graphs(
      {training_stream_graph(a, "runA"), training_stream_graph(b, "runB")});
  ASSERT_EQ(count_code(diagnostics, "QD101"), 1u);
  EXPECT_FALSE(has_errors(diagnostics));
}

// --- QD102: fingerprint soundness -------------------------------------------

TEST(StreamGraphQD102, PaperOptionFingerprintsAreSound) {
  // Every result-affecting field moves the fingerprint; keep_samples and
  // deadline_seconds deliberately do not.
  EXPECT_TRUE(audit_fingerprint_probes(
                  variance_fingerprint_probes(VarianceExperimentOptions{}),
                  "variance")
                  .empty());
  EXPECT_TRUE(audit_fingerprint_probes(
                  training_fingerprint_probes(TrainingExperimentOptions{}),
                  "training")
                  .empty());
  EXPECT_TRUE(audit_fingerprint_probes(
                  sweep_fingerprint_probes(TrainingSweepOptions{}), "sweep")
                  .empty());
}

TEST(StreamGraphQD102, BlindFingerprintIsError) {
  FingerprintProbe probe;
  probe.field = "layers";
  probe.expect_move = true;
  probe.base = "fp";
  probe.perturbed = "fp";  // result-affecting field did not move it
  const Diagnostics diagnostics = audit_fingerprint_probes({probe}, "test");
  ASSERT_EQ(count_code(diagnostics, "QD102"), 1u);
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StreamGraphQD102, OverSensitiveFingerprintIsWarning) {
  FingerprintProbe probe;
  probe.field = "keep_samples";
  probe.expect_move = false;
  probe.base = "fp";
  probe.perturbed = "fp2";  // cosmetic field invalidates every checkpoint
  const Diagnostics diagnostics = audit_fingerprint_probes({probe}, "test");
  ASSERT_EQ(count_code(diagnostics, "QD102"), 1u);
  EXPECT_FALSE(has_errors(diagnostics));
}

// --- QD103: cache-key coverage ----------------------------------------------

TEST(StreamGraphQD103, DuplicateQubitCountAliasesCellKeys) {
  // qubit_counts = {4, 4}: two cells with distinct RNG streams
  // (root.child(0) vs root.child(1)) but the same checkpoint key
  // "q=4/init=<name>" — a resume would restore one cell's results as the
  // other's.
  VarianceExperimentOptions options;
  options.qubit_counts = {4, 4};
  options.circuits_per_point = 1;
  const Diagnostics diagnostics =
      audit_stream_graph(variance_stream_graph(options));
  EXPECT_TRUE(has_code(diagnostics, "QD103"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StreamGraphQD103, WorkerBlindToFingerprintedFieldIsError) {
  FingerprintProbe probe;
  probe.field = "topology";
  probe.base = "fp-a";
  probe.perturbed = "fp-b";   // fingerprint distinguishes the runs...
  probe.wire_base = "{}";
  probe.wire_perturbed = "{}";  // ...but the wire encoding does not
  const Diagnostics diagnostics = audit_fingerprint_probes({probe}, "test");
  ASSERT_TRUE(has_code(diagnostics, "QD103"));
  EXPECT_TRUE(has_errors(diagnostics));
}

TEST(StreamGraphQD103, WireRoundTripMustRecoverTheFingerprint) {
  FingerprintProbe probe;
  probe.field = "entangler";
  probe.base = "fp-a";
  probe.perturbed = "fp-b";
  probe.wire_base = "{}";
  probe.wire_perturbed = "{\"entangler\":\"cnot\"}";
  probe.wire_roundtrip = "fp-a";  // decoding dropped the field
  const Diagnostics diagnostics = audit_fingerprint_probes({probe}, "test");
  ASSERT_TRUE(has_code(diagnostics, "QD103"));
  EXPECT_TRUE(has_errors(diagnostics));
}

// --- serve bridge -----------------------------------------------------------

TEST(ServeAudit, PaperRequestsAuditCleanIncludingWireProbes) {
  serve::RequestSpec variance;
  variance.id = "fig5a";
  variance.kind = serve::SpecKind::kVariance;
  variance.variance.qubit_counts = {2, 4, 6, 8, 10};
  EXPECT_TRUE(serve::audit_request(variance).empty());

  serve::RequestSpec training;
  training.id = "fig5b";
  training.kind = serve::SpecKind::kTraining;
  EXPECT_TRUE(serve::audit_request(training).empty());

  // The wire probes must actually be wired: every result-affecting probe
  // carries the worker-visible encoding.
  for (const FingerprintProbe& probe :
       serve::request_fingerprint_probes(variance)) {
    if (probe.expect_move) {
      EXPECT_FALSE(probe.wire_base.empty()) << probe.field;
      EXPECT_FALSE(probe.wire_roundtrip.empty()) << probe.field;
    }
  }
}

TEST(ServeAudit, RequestGraphMatchesEnumerateCells) {
  serve::RequestSpec spec;
  spec.id = "x";
  spec.kind = serve::SpecKind::kVariance;
  spec.variance.qubit_counts = {2, 3};
  const StreamGraph graph = serve::request_stream_graph(spec);
  const std::vector<serve::CellJob> cells = serve::enumerate_cells(spec);
  ASSERT_EQ(graph.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(graph.cells[i], cells[i].key);
  }
}

TEST(ServeAudit, CrossRequestSeedAliasingIsFlagged) {
  serve::RequestSpec a;
  a.id = "a";
  a.kind = serve::SpecKind::kTraining;
  serve::RequestSpec b = a;
  b.id = "b";
  b.training.layers += 1;  // distinct fingerprint, same root seed
  const Diagnostics diagnostics = serve::audit_requests({a, b});
  EXPECT_TRUE(has_code(diagnostics, "QD101"));
}

TEST(ServeProtocol, EntanglerAndTopologySurviveTheWire) {
  // The PR 7 wire format omitted entangler/topology even though both are
  // fingerprinted — the exact QD103 defect audit_request now guards. Pin
  // the fix: a non-default gate/topology must round-trip.
  VarianceExperimentOptions options;
  options.entangler = EntanglerGate::kCnot;
  options.topology = EntanglerTopology::kRing;
  const VarianceExperimentOptions decoded = serve::variance_options_from_json(
      serve::variance_options_to_json(options));
  EXPECT_EQ(decoded.entangler, EntanglerGate::kCnot);
  EXPECT_EQ(decoded.topology, EntanglerTopology::kRing);
  EXPECT_EQ(options_fingerprint(decoded), options_fingerprint(options));
}

// --- QB007 fold -------------------------------------------------------------

TEST(SweepPreflight, DerivedSeedLadderStillPassesQB007) {
  // lint_sweep_options now derives its (label, seed) pairs from
  // sweep_stream_graphs; the fold must not change QB007's verdicts: the
  // derived ladder is collision-free for every paper training shape.
  for (const std::size_t layers : {1u, 5u}) {
    TrainingSweepOptions options;
    options.base.layers = layers;
    options.repetitions = 5;
    const Diagnostics diagnostics = lint_sweep_options(options);
    EXPECT_FALSE(has_code(diagnostics, "QB007")) << "layers=" << layers;
    // ...and matches the base experiment's own findings (the fold added
    // no sweep-specific noise).
    EXPECT_EQ(diagnostics.size(), lint_training_options(options.base).size())
        << "layers=" << layers;
  }
}

// --- plumbing ---------------------------------------------------------------

TEST(StreamGraph, RuleRegistryCoversTheQDFamily) {
  const std::vector<LintRuleInfo>& rules = determinism_rules();
  std::set<std::string> codes;
  for (const LintRuleInfo& rule : rules) codes.insert(rule.code);
  for (const char* code : {"QD100", "QD101", "QD102", "QD103", "QD110",
                           "QD111", "QD112", "QD113", "QD114", "QD115"}) {
    EXPECT_EQ(codes.count(code), 1u) << code;
  }
  EXPECT_FALSE(determinism_rule_table().to_ascii().empty());
}

TEST(StreamGraph, FindingsRoundTripThroughJson) {
  VarianceExperimentOptions options;
  options.qubit_counts = {4, 4};
  options.circuits_per_point = 1;
  const Diagnostics diagnostics = audit_variance_options(options);
  ASSERT_TRUE(has_errors(diagnostics));
  const Diagnostics restored =
      diagnostics_from_json(parse_json(to_json(diagnostics).dump(2)));
  ASSERT_EQ(restored.size(), diagnostics.size());
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    EXPECT_EQ(restored[i].code, diagnostics[i].code);
    EXPECT_EQ(restored[i].severity, diagnostics[i].severity);
    EXPECT_EQ(restored[i].message, diagnostics[i].message);
    EXPECT_EQ(restored[i].location, diagnostics[i].location);
  }
}

TEST(StreamGraph, RespectsDisabledRulesAndFindingCaps) {
  VarianceExperimentOptions options;
  options.qubit_counts = {4, 4};
  options.circuits_per_point = 1;
  LintOptions lint;
  lint.disabled_codes = {"QD103"};
  EXPECT_FALSE(
      has_code(audit_stream_graph(variance_stream_graph(options), lint),
               "QD103"));

  // A graph with many collisions folds the overflow into a summary line.
  StreamGraph graph;
  graph.label = "forged";
  for (std::uint64_t i = 0; i < 24; ++i) {
    std::string cell = "c";
    cell += std::to_string(i);
    graph.leaves.push_back({StreamRole::kParam, cell, {i}, 5, false});
  }
  LintOptions capped;
  capped.max_findings_per_rule = 4;
  const Diagnostics diagnostics = audit_stream_graph(graph, capped);
  EXPECT_EQ(count_code(diagnostics, "QD100"), 5u);  // 4 findings + summary
}

}  // namespace
}  // namespace qbarren
