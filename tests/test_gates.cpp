// Unit and property tests for the gate matrix library.
#include "qbarren/qsim/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

using gates::Axis;

constexpr double kTol = 1e-12;

void expect_matrix_near(const ComplexMatrix& a, const ComplexMatrix& b,
                        double tol = kTol) {
  EXPECT_LT(max_abs_diff(a, b), tol);
}

TEST(Gates, PauliMatricesSquareToIdentity) {
  expect_matrix_near(gates::pauli_x() * gates::pauli_x(), gates::identity2());
  expect_matrix_near(gates::pauli_y() * gates::pauli_y(), gates::identity2());
  expect_matrix_near(gates::pauli_z() * gates::pauli_z(), gates::identity2());
}

TEST(Gates, PauliAnticommutation) {
  // XY = iZ.
  const ComplexMatrix xy = gates::pauli_x() * gates::pauli_y();
  const ComplexMatrix iz = Complex{0.0, 1.0} * gates::pauli_z();
  expect_matrix_near(xy, iz);
}

TEST(Gates, HadamardConjugatesXToZ) {
  const ComplexMatrix h = gates::hadamard();
  expect_matrix_near(h * gates::pauli_x() * h, gates::pauli_z());
  expect_matrix_near(h * h, gates::identity2());
}

TEST(Gates, SAndTGates) {
  // S^2 = Z, T^2 = S.
  expect_matrix_near(gates::s_gate() * gates::s_gate(), gates::pauli_z());
  expect_matrix_near(gates::t_gate() * gates::t_gate(), gates::s_gate());
}

TEST(Gates, RotationAtZeroIsIdentity) {
  expect_matrix_near(gates::rx(0.0), gates::identity2());
  expect_matrix_near(gates::ry(0.0), gates::identity2());
  expect_matrix_near(gates::rz(0.0), gates::identity2());
}

TEST(Gates, RotationAtPiEqualsPauliUpToPhase) {
  // R_P(pi) = -i P.
  const Complex minus_i{0.0, -1.0};
  expect_matrix_near(gates::rx(M_PI), minus_i * gates::pauli_x());
  expect_matrix_near(gates::ry(M_PI), minus_i * gates::pauli_y());
  expect_matrix_near(gates::rz(M_PI), minus_i * gates::pauli_z());
}

TEST(Gates, RotationAt2PiIsMinusIdentity) {
  // Spinor double cover: R_P(2 pi) = -I.
  const ComplexMatrix minus_id = Complex{-1.0, 0.0} * gates::identity2();
  expect_matrix_near(gates::rx(2.0 * M_PI), minus_id);
  expect_matrix_near(gates::ry(2.0 * M_PI), minus_id);
  expect_matrix_near(gates::rz(2.0 * M_PI), minus_id);
}

TEST(Gates, RotationsCompose) {
  // R_P(a) R_P(b) = R_P(a + b).
  expect_matrix_near(gates::rx(0.3) * gates::rx(0.4), gates::rx(0.7));
  expect_matrix_near(gates::ry(1.1) * gates::ry(-0.2), gates::ry(0.9));
  expect_matrix_near(gates::rz(0.5) * gates::rz(0.5), gates::rz(1.0));
}

TEST(Gates, RyKnownValues) {
  const ComplexMatrix r = gates::ry(M_PI / 2.0);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(r(0, 0).real(), s, kTol);
  EXPECT_NEAR(r(0, 1).real(), -s, kTol);
  EXPECT_NEAR(r(1, 0).real(), s, kTol);
  EXPECT_NEAR(r(1, 1).real(), s, kTol);
}

TEST(Gates, PhaseGate) {
  const ComplexMatrix p = gates::phase(M_PI);
  EXPECT_NEAR(std::abs(p(1, 1) - Complex{-1.0, 0.0}), 0.0, kTol);
  expect_matrix_near(gates::phase(M_PI / 2.0), gates::s_gate());
}

TEST(Gates, U3ReducesToRy) {
  // U3(theta, 0, 0) = RY(theta).
  expect_matrix_near(gates::u3(0.7, 0.0, 0.0), gates::ry(0.7));
}

TEST(Gates, CzIsSymmetricDiagonal) {
  const ComplexMatrix cz = gates::cz();
  EXPECT_TRUE(is_unitary(cz));
  EXPECT_TRUE(is_hermitian(cz));
  EXPECT_EQ(cz(3, 3), (Complex{-1.0, 0.0}));
  EXPECT_EQ(cz(0, 0), (Complex{1.0, 0.0}));
}

TEST(Gates, CnotMapsBasisStates) {
  // Control = bit 0: |q1 q0> = |01> (index 1) -> |11> (index 3).
  const ComplexMatrix cx = gates::cnot();
  EXPECT_EQ(cx(3, 1), (Complex{1.0, 0.0}));
  EXPECT_EQ(cx(1, 3), (Complex{1.0, 0.0}));
  EXPECT_EQ(cx(0, 0), (Complex{1.0, 0.0}));
  EXPECT_EQ(cx(2, 2), (Complex{1.0, 0.0}));
  EXPECT_TRUE(is_unitary(cx));
}

TEST(Gates, SwapExchangesMiddleStates) {
  const ComplexMatrix sw = gates::swap();
  EXPECT_EQ(sw(1, 2), (Complex{1.0, 0.0}));
  EXPECT_EQ(sw(2, 1), (Complex{1.0, 0.0}));
  EXPECT_TRUE(is_unitary(sw));
}

TEST(Gates, CrzControlledOnLowBit) {
  const ComplexMatrix m = gates::crz(0.8);
  EXPECT_TRUE(is_unitary(m));
  // Control clear (indices 0, 2): identity.
  EXPECT_EQ(m(0, 0), (Complex{1.0, 0.0}));
  EXPECT_EQ(m(2, 2), (Complex{1.0, 0.0}));
  // Control set: RZ phases.
  EXPECT_NEAR(std::arg(m(1, 1)), -0.4, kTol);
  EXPECT_NEAR(std::arg(m(3, 3)), 0.4, kTol);
}

TEST(Gates, RotationDerivativeMatchesFiniteDifference) {
  const double theta = 0.37;
  const double h = 1e-7;
  for (const Axis axis : {Axis::kX, Axis::kY, Axis::kZ}) {
    const ComplexMatrix d = gates::rotation_derivative(axis, theta);
    const ComplexMatrix fd =
        Complex{1.0 / (2.0 * h), 0.0} *
        (gates::rotation(axis, theta + h) - gates::rotation(axis, theta - h));
    EXPECT_LT(max_abs_diff(d, fd), 1e-7);
  }
}

TEST(Gates, AxisNamesRoundTrip) {
  EXPECT_EQ(gates::axis_name(Axis::kX), "RX");
  EXPECT_EQ(gates::axis_name(Axis::kY), "RY");
  EXPECT_EQ(gates::axis_name(Axis::kZ), "RZ");
  EXPECT_EQ(gates::axis_from_name("RX"), Axis::kX);
  EXPECT_EQ(gates::axis_from_name("ry"), Axis::kY);
  EXPECT_EQ(gates::axis_from_name("Z"), Axis::kZ);
  EXPECT_THROW((void)gates::axis_from_name("RW"), NotFound);
}

// Property sweep: every parameterized gate is unitary at every angle, and
// the adjoint equals the rotation at the negated angle.
class RotationProperties : public ::testing::TestWithParam<double> {};

TEST_P(RotationProperties, UnitaryAtAllAngles) {
  const double theta = GetParam();
  for (const Axis axis : {Axis::kX, Axis::kY, Axis::kZ}) {
    EXPECT_TRUE(is_unitary(gates::rotation(axis, theta)))
        << gates::axis_name(axis) << "(" << theta << ")";
  }
  EXPECT_TRUE(is_unitary(gates::phase(theta)));
  EXPECT_TRUE(is_unitary(gates::u3(theta, 0.4, -1.2)));
  EXPECT_TRUE(is_unitary(gates::crz(theta)));
}

TEST_P(RotationProperties, AdjointIsNegatedAngle) {
  const double theta = GetParam();
  for (const Axis axis : {Axis::kX, Axis::kY, Axis::kZ}) {
    expect_matrix_near(adjoint(gates::rotation(axis, theta)),
                       gates::rotation(axis, -theta));
  }
}

TEST_P(RotationProperties, GeneratorRelationHolds) {
  // dR/dtheta = (-i/2) P R must itself satisfy dR * R^dag = (-i/2) P.
  const double theta = GetParam();
  for (const Axis axis : {Axis::kX, Axis::kY, Axis::kZ}) {
    const ComplexMatrix lhs = gates::rotation_derivative(axis, theta) *
                              adjoint(gates::rotation(axis, theta));
    const ComplexMatrix rhs = Complex{0.0, -0.5} * gates::pauli(axis);
    expect_matrix_near(lhs, rhs, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationProperties,
                         ::testing::Values(-7.0, -M_PI, -0.5, 0.0, 1e-8, 0.3,
                                           M_PI / 2.0, M_PI, 2.2, 6.9));

}  // namespace
}  // namespace qbarren
