// Tests for finite-shot measurement sampling.
#include "qbarren/qsim/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

TEST(Sampling, DeterministicOutcomeOnBasisState) {
  StateVector s(2);
  s.apply_single_qubit(gates::pauli_x(), 1);  // |10>
  Rng rng(1);
  for (const std::size_t outcome : sample_basis_states(s, 100, rng)) {
    EXPECT_EQ(outcome, 0b10u);
  }
}

TEST(Sampling, ValidatesInputs) {
  const StateVector s(1);
  Rng rng(1);
  EXPECT_THROW((void)sample_basis_states(s, 0, rng), InvalidArgument);

  StateVector unnormalized(1, {Complex{2.0, 0.0}, Complex{0.0, 0.0}});
  EXPECT_THROW((void)sample_basis_states(unnormalized, 10, rng),
               InvalidArgument);
  EXPECT_THROW((void)estimate_probability(s, 2, 10, rng), InvalidArgument);
}

TEST(Sampling, FrequenciesMatchProbabilities) {
  StateVector s(2);
  s.apply_single_qubit(gates::ry(2.0 * std::acos(std::sqrt(0.7))), 0);
  // p(|00>) = 0.7, p(|01>) = 0.3.
  Rng rng(7);
  const auto counts = sample_counts(s, 50000, rng);
  EXPECT_NEAR(static_cast<double>(counts.at(0)) / 50000.0, 0.7, 0.01);
  EXPECT_NEAR(static_cast<double>(counts.at(1)) / 50000.0, 0.3, 0.01);
  EXPECT_EQ(counts.count(2), 0u);
  EXPECT_EQ(counts.count(3), 0u);
}

TEST(Sampling, EstimateProbabilityConverges) {
  StateVector s(1);
  s.apply_single_qubit(gates::hadamard(), 0);
  Rng rng(11);
  EXPECT_NEAR(estimate_probability(s, 0, 100000, rng), 0.5, 0.01);
}

TEST(Sampling, GlobalCostEstimatorOnZeroState) {
  const StateVector s(3);
  Rng rng(13);
  EXPECT_DOUBLE_EQ(estimate_global_cost(s, 1000, rng), 0.0);
}

TEST(Sampling, DeterministicGivenSeed) {
  StateVector s(2);
  s.apply_single_qubit(gates::hadamard(), 0);
  s.apply_single_qubit(gates::hadamard(), 1);
  Rng a(3);
  Rng b(3);
  EXPECT_EQ(sample_basis_states(s, 64, a), sample_basis_states(s, 64, b));
}

TEST(ShotNoise, StderrFormulaAndValidation) {
  EXPECT_DOUBLE_EQ(shot_noise_stderr(0.5, 100), std::sqrt(0.25 / 100.0));
  EXPECT_DOUBLE_EQ(shot_noise_stderr(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(shot_noise_stderr(1.0, 100), 0.0);
  EXPECT_THROW((void)shot_noise_stderr(1.5, 100), InvalidArgument);
  EXPECT_THROW((void)shot_noise_stderr(0.5, 0), InvalidArgument);
}

TEST(ShotNoise, EmpiricalSpreadMatchesFormula) {
  // Repeat a 1000-shot estimate of p = 0.5 many times; the empirical
  // standard deviation of the estimates should match sqrt(p(1-p)/shots).
  StateVector s(1);
  s.apply_single_qubit(gates::hadamard(), 0);
  const std::size_t shots = 1000;
  std::vector<double> estimates;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng rng = Rng(42).child(trial);
    estimates.push_back(estimate_probability(s, 0, shots, rng));
  }
  double mean_est = 0.0;
  for (double e : estimates) mean_est += e;
  mean_est /= static_cast<double>(estimates.size());
  double var = 0.0;
  for (double e : estimates) var += (e - mean_est) * (e - mean_est);
  var /= static_cast<double>(estimates.size() - 1);
  EXPECT_NEAR(std::sqrt(var), shot_noise_stderr(0.5, shots), 0.004);
}

// Property sweep: sampled distribution matches the exact one in total
// variation for a range of states.
class SamplingFidelity : public ::testing::TestWithParam<double> {};

TEST_P(SamplingFidelity, TotalVariationSmall) {
  const double theta = GetParam();
  StateVector s(2);
  s.apply_single_qubit(gates::ry(theta), 0);
  s.apply_controlled(gates::pauli_x(), 0, 1);
  Rng rng(static_cast<std::uint64_t>(theta * 1000) + 1);
  const std::size_t shots = 40000;
  const auto counts = sample_counts(s, shots, rng);
  double tv = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double freq =
        counts.count(i)
            ? static_cast<double>(counts.at(i)) / static_cast<double>(shots)
            : 0.0;
    tv += std::abs(freq - s.probability(i));
  }
  EXPECT_LT(tv / 2.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Angles, SamplingFidelity,
                         ::testing::Values(0.3, 1.0, M_PI / 2.0, 2.5));

}  // namespace
}  // namespace qbarren
