// Cross-module integration tests: the full pipeline the benches exercise,
// on reduced problem sizes, plus paper-level structural facts.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/printer.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

namespace qbarren {
namespace {

TEST(Integration, PaperAnsatzFactsHold) {
  // §IV-D: n = 10, L = 5 -> 145 gates, 100 parameters.
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit c = training_ansatz(10, options);
  EXPECT_EQ(c.num_operations(), 145u);
  EXPECT_EQ(c.num_parameters(), 100u);

  // Eq 4's cost at theta = 0 (identity circuit) is exactly 0.
  const CostFunction cost =
      make_identity_cost(std::make_shared<const Circuit>(c));
  EXPECT_NEAR(cost.value(std::vector<double>(100, 0.0)), 0.0, 1e-12);
}

TEST(Integration, EndToEndPipelineOnTinyProblem) {
  // initializer -> ansatz -> cost -> gradient -> optimizer, 3 qubits.
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = 2;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(3, ansatz_options));
  const CostFunction cost = make_identity_cost(circuit);

  const auto init = make_initializer("xavier-normal");
  Rng rng(4);
  std::vector<double> params = init->initialize(*circuit, rng);

  const AdjointEngine engine;
  AdamOptimizer optimizer(0.1);
  TrainOptions train_options;
  train_options.max_iterations = 40;
  const TrainResult result =
      train(cost, engine, optimizer, std::move(params), train_options);
  EXPECT_LT(result.final_loss, 0.02);
}

TEST(Integration, GradientVarianceMatchesDirectComputation) {
  // Recompute one (q, init) cell of the variance experiment by hand and
  // compare with the experiment's output.
  VarianceExperimentOptions options;
  options.qubit_counts = {3};
  options.circuits_per_point = 5;
  options.layers = 4;
  options.seed = 99;

  const auto random = make_initializer("random");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get()});

  // Manual replication of the experiment's stream layout.
  const Rng root(99);
  const Rng q_stream = root.child(0);
  const ParameterShiftEngine engine;
  const GlobalZeroObservable obs(3);
  std::vector<double> samples;
  for (std::size_t i = 0; i < 5; ++i) {
    const Rng circuit_stream = q_stream.child(2 * i);
    Rng structure = circuit_stream.child(0);
    VarianceAnsatzOptions ansatz_options;
    ansatz_options.layers = 4;
    const Circuit c = variance_ansatz(3, structure, ansatz_options);
    Rng param_rng = circuit_stream.child(1);
    const auto params = random->initialize(c, param_rng);
    samples.push_back(
        engine.partial(c, obs, params, c.num_parameters() - 1));
  }
  EXPECT_NEAR(result.series[0].points[0].variance, sample_variance(samples),
              1e-15);
}

TEST(Integration, ZerosInitializerIsExactIdentityEverywhere) {
  // Zeros-initialized training circuits have cost exactly 0 and zero
  // gradient at every width — the best-case baseline the near-identity
  // strategies approximate.
  for (const std::size_t q : {2u, 4u, 6u}) {
    TrainingAnsatzOptions options;
    options.layers = 3;
    auto circuit =
        std::make_shared<const Circuit>(training_ansatz(q, options));
    const CostFunction cost = make_identity_cost(circuit);
    const auto zeros = make_initializer("zeros");
    Rng rng(1);
    const auto params = zeros->initialize(*circuit, rng);
    EXPECT_NEAR(cost.value(params), 0.0, 1e-12);
    const AdjointEngine engine;
    for (const double g :
         engine.gradient(*circuit, cost.observable(), params)) {
      EXPECT_NEAR(g, 0.0, 1e-11);
    }
  }
}

TEST(Integration, SmallNormalGradientLargerThanRandomAtWidth) {
  // The mechanism behind the whole paper: near-identity initialization
  // preserves gradient magnitude where wide random circuits lose it.
  VarianceExperimentOptions options;
  options.qubit_counts = {6};
  options.circuits_per_point = 40;
  options.layers = 30;
  options.seed = 21;
  const auto random = make_initializer("random");
  const auto small = make_initializer("small-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get(), small.get()});
  EXPECT_GT(result.series[1].points[0].variance,
            5.0 * result.series[0].points[0].variance);
}

TEST(Integration, LocalCostDecaysSlowerThanGlobal) {
  // Cerezo et al.'s observation, reproduced by the ablation path: at fixed
  // depth the local cost's gradient variance decays more slowly in q.
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 6};
  options.circuits_per_point = 40;
  options.layers = 12;
  options.seed = 5;
  const auto random = make_initializer("random");

  options.cost = CostKind::kGlobalZero;
  const VarianceResult global =
      VarianceExperiment(options).run({random.get()});
  options.cost = CostKind::kLocalZero;
  const VarianceResult local =
      VarianceExperiment(options).run({random.get()});
  EXPECT_LT(global.series[0].decay_fit.slope,
            local.series[0].decay_fit.slope);
}

TEST(Integration, QasmExportOfPaperAnsatzParses) {
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit c = training_ansatz(10, options);
  const std::vector<double> params(c.num_parameters(), 0.1);
  const std::string qasm = to_qasm(c, params);
  // 145 gate lines + 3 header lines.
  std::size_t lines = 0;
  for (const char ch : qasm) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 148u);
  EXPECT_NE(qasm.find("cz q[8], q[9];"), std::string::npos);
}

TEST(Integration, FullReproductionPipelineIsDeterministic) {
  // Variance + training + landscape with the same seeds twice.
  VarianceExperimentOptions v;
  v.qubit_counts = {2, 3};
  v.circuits_per_point = 6;
  v.layers = 5;
  const VarianceResult v1 = VarianceExperiment(v).run_paper_set();
  const VarianceResult v2 = VarianceExperiment(v).run_paper_set();
  EXPECT_DOUBLE_EQ(v1.series[3].points[1].variance,
                   v2.series[3].points[1].variance);

  TrainingExperimentOptions t;
  t.qubits = 3;
  t.layers = 2;
  t.iterations = 5;
  const TrainingResult t1 = TrainingExperiment(t).run_paper_set();
  const TrainingResult t2 = TrainingExperiment(t).run_paper_set();
  EXPECT_EQ(t1.series[2].result.loss_history,
            t2.series[2].result.loss_history);

  LandscapeOptions l;
  l.qubits = 2;
  l.layers = 5;
  l.grid_points = 5;
  EXPECT_EQ(scan_landscape(l).values, scan_landscape(l).values);
}

}  // namespace
}  // namespace qbarren
