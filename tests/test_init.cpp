// Tests for the initialization strategies: sizes, determinism, bounds, and
// — via TEST_P sweeps — the variance formulas of §III.
#include "qbarren/init/initializers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

Circuit make_ansatz(std::size_t qubits, std::size_t layers) {
  TrainingAnsatzOptions options;
  options.layers = layers;
  return training_ansatz(qubits, options);
}

// Pools draws over many seeds so moment checks have tight tolerances.
std::vector<double> pooled_draws(const Initializer& init,
                                 const Circuit& circuit, int repetitions) {
  std::vector<double> all;
  for (int rep = 0; rep < repetitions; ++rep) {
    Rng rng(static_cast<std::uint64_t>(rep) + 1000);
    const auto params = init.initialize(circuit, rng);
    all.insert(all.end(), params.begin(), params.end());
  }
  return all;
}

TEST(Initializers, ProduceCorrectSize) {
  const Circuit circuit = make_ansatz(4, 3);
  for (const auto& name : initializer_names()) {
    const auto init = make_initializer(name);
    Rng rng(1);
    EXPECT_EQ(init->initialize(circuit, rng).size(),
              circuit.num_parameters())
        << name;
  }
}

TEST(Initializers, DeterministicGivenSeed) {
  const Circuit circuit = make_ansatz(3, 2);
  for (const auto& name : initializer_names()) {
    const auto init = make_initializer(name);
    Rng a(77);
    Rng b(77);
    EXPECT_EQ(init->initialize(circuit, a), init->initialize(circuit, b))
        << name;
  }
}

TEST(RandomInit, UniformOnZeroTwoPi) {
  const Circuit circuit = make_ansatz(4, 10);
  const RandomInitializer init;
  const auto draws = pooled_draws(init, circuit, 50);
  double lo = 1e9;
  double hi = -1e9;
  for (double v : draws) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 2.0 * M_PI);
  EXPECT_NEAR(mean(draws), M_PI, 0.05);
  EXPECT_NEAR(sample_variance(draws), 4.0 * M_PI * M_PI / 12.0, 0.1);
}

TEST(RandomInit, CustomRangeValidated) {
  EXPECT_THROW(RandomInitializer(1.0, 1.0), InvalidArgument);
  const RandomInitializer init(-0.5, 0.5);
  const Circuit circuit = make_ansatz(2, 1);
  Rng rng(1);
  for (double v : init.initialize(circuit, rng)) {
    EXPECT_GE(v, -0.5);
    EXPECT_LT(v, 0.5);
  }
}

TEST(XavierUniform, BoundsMatchFormula) {
  const Circuit circuit = make_ansatz(5, 4);  // fan_in = 10, fan_out = 4
  const XavierUniformInitializer init;
  const double limit = std::sqrt(6.0 / (10.0 + 4.0));
  const auto draws = pooled_draws(init, circuit, 50);
  for (double v : draws) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  // Uniform(-l, l) variance = l^2 / 3.
  EXPECT_NEAR(sample_variance(draws), limit * limit / 3.0,
              0.05 * limit * limit);
}

TEST(LeCunUniform, BoundsMatchFormula) {
  const Circuit circuit = make_ansatz(4, 2);  // fan_in = 8
  const LeCunUniformInitializer init;
  const double limit = 1.0 / std::sqrt(8.0);
  const auto draws = pooled_draws(init, circuit, 50);
  for (double v : draws) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(HeUniform, BoundsMatchFormula) {
  const Circuit circuit = make_ansatz(4, 2);  // fan_in = 8
  const HeUniformInitializer init;
  const double limit = std::sqrt(6.0 / 8.0);
  const auto draws = pooled_draws(init, circuit, 30);
  for (double v : draws) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Orthogonal, LayerRowsAreOrthonormal) {
  // Per-layer-square mode: consecutive groups of fan_in rows form an
  // orthogonal matrix, so every layer-row has unit norm and distinct rows
  // within a block are orthogonal.
  const Circuit circuit = make_ansatz(3, 6);  // fan_in = 6, layers = 6
  const OrthogonalInitializer init;
  Rng rng(5);
  const auto params = init.initialize(circuit, rng);
  ASSERT_EQ(params.size(), 36u);
  RealMatrix block(6, 6);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      block(r, c) = params[r * 6 + c];
    }
  }
  EXPECT_TRUE(has_orthonormal_columns(block, 1e-9));
  EXPECT_TRUE(has_orthonormal_columns(block.transpose(), 1e-9));
}

TEST(Orthogonal, FullTensorColumnsOrthonormal) {
  const Circuit circuit = make_ansatz(2, 8);  // tensor 8 x 4
  const OrthogonalInitializer init(FanMode::kLayerTensor, 1.0,
                                   OrthogonalBlockMode::kFullTensor);
  Rng rng(6);
  const auto params = init.initialize(circuit, rng);
  ASSERT_EQ(params.size(), 32u);
  RealMatrix m(8, 4);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m(r, c) = params[r * 4 + c];
    }
  }
  EXPECT_TRUE(has_orthonormal_columns(m, 1e-9));
}

TEST(Orthogonal, GainScalesEntries) {
  const Circuit circuit = make_ansatz(2, 2);
  const OrthogonalInitializer unit(FanMode::kLayerTensor, 1.0);
  const OrthogonalInitializer doubled(FanMode::kLayerTensor, 2.0);
  Rng a(3);
  Rng b(3);
  const auto pa = unit.initialize(circuit, a);
  const auto pb = doubled.initialize(circuit, b);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_NEAR(pb[i], 2.0 * pa[i], 1e-12);
  }
}

TEST(Beta, StaysInScaledRange) {
  const Circuit circuit = make_ansatz(3, 3);
  const BetaInitializer init(2.0, 2.0, M_PI);
  const auto draws = pooled_draws(init, circuit, 30);
  for (double v : draws) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, M_PI);
  }
  // Beta(2,2) mean = 0.5 -> scaled mean = pi/2.
  EXPECT_NEAR(mean(draws), M_PI / 2.0, 0.05);
}

TEST(Beta, ValidatesParameters) {
  EXPECT_THROW(BetaInitializer(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(BetaInitializer(1.0, 1.0, -1.0), InvalidArgument);
}

TEST(Zeros, AllZero) {
  const Circuit circuit = make_ansatz(3, 2);
  const ZerosInitializer init;
  Rng rng(1);
  for (double v : init.initialize(circuit, rng)) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(SmallNormal, SigmaControlsSpread) {
  const Circuit circuit = make_ansatz(4, 10);
  const SmallNormalInitializer init(0.05);
  const auto draws = pooled_draws(init, circuit, 50);
  EXPECT_NEAR(mean(draws), 0.0, 0.01);
  EXPECT_NEAR(sample_stddev(draws), 0.05, 0.005);
  EXPECT_THROW(SmallNormalInitializer(-0.1), InvalidArgument);
}

TEST(FanComputation, LayerTensorUsesRecordedShape) {
  const Circuit circuit = make_ansatz(5, 7);
  const FanPair fans = compute_fans(circuit, FanMode::kLayerTensor);
  EXPECT_EQ(fans.fan_in, 10u);  // 2 * qubits
  EXPECT_EQ(fans.fan_out, 7u);
}

TEST(FanComputation, FallsBackToSingleLayer) {
  Circuit c(3);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_rotation(gates::Axis::kY, 1);
  const FanPair fans = compute_fans(c, FanMode::kLayerTensor);
  EXPECT_EQ(fans.fan_in, 2u);
  EXPECT_EQ(fans.fan_out, 1u);
}

TEST(FanComputation, QubitSquare) {
  const Circuit circuit = make_ansatz(5, 7);
  const FanPair fans = compute_fans(circuit, FanMode::kQubitSquare);
  EXPECT_EQ(fans.fan_in, 5u);
  EXPECT_EQ(fans.fan_out, 5u);
}

TEST(FanComputation, ModeNames) {
  EXPECT_EQ(fan_mode_name(FanMode::kLayerTensor), "layer-tensor");
  EXPECT_EQ(fan_mode_name(FanMode::kQubitSquare), "qubit-square");
}

TEST(Registry, KnownNamesConstruct) {
  for (const auto& name : initializer_names()) {
    const auto init = make_initializer(name);
    ASSERT_NE(init, nullptr);
    EXPECT_EQ(init->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_initializer("glorot"), NotFound);
}

TEST(Registry, PaperSetMatchesPaperOrder) {
  const auto set = paper_initializers();
  ASSERT_EQ(set.size(), 6u);
  EXPECT_EQ(set[0]->name(), "random");
  EXPECT_EQ(set[1]->name(), "xavier-normal");
  EXPECT_EQ(set[2]->name(), "xavier-uniform");
  EXPECT_EQ(set[3]->name(), "he");
  EXPECT_EQ(set[4]->name(), "lecun");
  EXPECT_EQ(set[5]->name(), "orthogonal");
}

// Property sweep: sampled variances match the §III closed forms for every
// (qubits, layers) shape.
struct VarianceCase {
  std::string initializer;
  std::size_t qubits;
  std::size_t layers;
};

class InitVarianceFormula : public ::testing::TestWithParam<VarianceCase> {};

TEST_P(InitVarianceFormula, SampleVarianceMatchesClosedForm) {
  const VarianceCase& vc = GetParam();
  const Circuit circuit = make_ansatz(vc.qubits, vc.layers);
  const double fan_in = 2.0 * static_cast<double>(vc.qubits);
  const double fan_out = static_cast<double>(vc.layers);

  double expected = 0.0;
  if (vc.initializer == "xavier-normal" ||
      vc.initializer == "xavier-uniform") {
    expected = 2.0 / (fan_in + fan_out);
  } else if (vc.initializer == "he" || vc.initializer == "he-uniform") {
    expected = 2.0 / fan_in;
  } else if (vc.initializer == "lecun") {
    expected = 1.0 / fan_in;
  } else if (vc.initializer == "lecun-uniform") {
    // The paper's uniform LeCun variant is U(-1/sqrt(n_in), 1/sqrt(n_in)),
    // whose variance is limit^2 / 3 — it does not variance-match the
    // normal variant.
    expected = 1.0 / (3.0 * fan_in);
  } else if (vc.initializer == "orthogonal") {
    expected = 1.0 / fan_in;  // Haar orthogonal entries: variance 1/dim
  } else {
    FAIL() << "unhandled case " << vc.initializer;
  }

  const auto init = make_initializer(vc.initializer);
  const auto draws = pooled_draws(*init, circuit, 200);
  EXPECT_NEAR(mean(draws), 0.0, 0.3 * std::sqrt(expected))
      << vc.initializer;
  EXPECT_NEAR(sample_variance(draws), expected, 0.12 * expected)
      << vc.initializer << " at q=" << vc.qubits << " L=" << vc.layers;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, InitVarianceFormula,
    ::testing::Values(VarianceCase{"xavier-normal", 4, 8},
                      VarianceCase{"xavier-normal", 10, 5},
                      VarianceCase{"xavier-uniform", 4, 8},
                      VarianceCase{"xavier-uniform", 6, 20},
                      VarianceCase{"he", 4, 8}, VarianceCase{"he", 8, 3},
                      VarianceCase{"he-uniform", 4, 8},
                      VarianceCase{"lecun", 4, 8},
                      VarianceCase{"lecun", 10, 5},
                      VarianceCase{"lecun-uniform", 4, 8},
                      VarianceCase{"orthogonal", 4, 8},
                      VarianceCase{"orthogonal", 5, 10}),
    [](const ::testing::TestParamInfo<VarianceCase>& info) {
      std::string name = info.param.initializer + "_q" +
                         std::to_string(info.param.qubits) + "_L" +
                         std::to_string(info.param.layers);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace qbarren
