// Tests for the training experiment (paper Fig 5b/5c) at reduced scale.
#include "qbarren/bp/training.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

TrainingExperimentOptions small_options() {
  TrainingExperimentOptions options;
  options.qubits = 6;
  options.layers = 3;
  options.iterations = 25;
  options.learning_rate = 0.1;
  options.seed = 7;
  return options;
}

TEST(TrainingExperiment, ValidatesOptions) {
  TrainingExperimentOptions bad = small_options();
  bad.qubits = 0;
  EXPECT_THROW(TrainingExperiment{bad}, InvalidArgument);
  bad = small_options();
  bad.layers = 0;
  EXPECT_THROW(TrainingExperiment{bad}, InvalidArgument);
  bad = small_options();
  bad.learning_rate = 0.0;
  EXPECT_THROW(TrainingExperiment{bad}, InvalidArgument);
  bad = small_options();
  bad.iterations = 0;
  EXPECT_THROW(TrainingExperiment{bad}, InvalidArgument);
  bad = small_options();
  bad.deadline_seconds = -1.0;
  EXPECT_THROW(TrainingExperiment{bad}, InvalidArgument);
  bad = small_options();
  bad.optimizer = "no-such-optimizer";
  EXPECT_THROW(TrainingExperiment{bad}, NotFound);
  bad = small_options();
  bad.gradient_engine = "no-such-engine";
  EXPECT_THROW(TrainingExperiment{bad}, NotFound);
}

TEST(TrainingExperiment, RejectsEmptyOrNullInitializers) {
  const TrainingExperiment experiment(small_options());
  EXPECT_THROW((void)experiment.run({}), InvalidArgument);
  EXPECT_THROW((void)experiment.run({nullptr}), InvalidArgument);
}

TEST(TrainingExperiment, SeriesShapesMatchOptions) {
  const TrainingExperiment experiment(small_options());
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result =
      experiment.run({random.get(), xavier.get()});
  ASSERT_EQ(result.series.size(), 2u);
  for (const TrainingSeries& s : result.series) {
    EXPECT_EQ(s.result.loss_history.size(), 26u);
    EXPECT_EQ(s.result.iterations, 25u);
  }
}

TEST(TrainingExperiment, RandomStallsXavierConverges) {
  // The paper's headline training contrast, at 6 qubits with GD: random
  // initialization sits on the plateau while Xavier trains.
  const TrainingExperiment experiment(small_options());
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result =
      experiment.run({random.get(), xavier.get()});

  const TrainResult& r = result.find("random").result;
  const TrainResult& x = result.find("xavier-normal").result;
  // Random barely moves from its initial loss...
  EXPECT_LT(r.initial_loss - r.final_loss, 0.2);
  // ...while Xavier reduces the loss substantially.
  EXPECT_GT(x.initial_loss - x.final_loss, 0.5);
  EXPECT_LT(x.final_loss, 0.15);
}

TEST(TrainingExperiment, AdamRescuesRandomButSlower) {
  TrainingExperimentOptions options = small_options();
  options.optimizer = "adam";
  options.iterations = 40;
  const TrainingExperiment experiment(options);
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result =
      experiment.run({random.get(), xavier.get()});
  const auto& r = result.find("random").result;
  const auto& x = result.find("xavier-normal").result;
  EXPECT_LT(r.final_loss, 0.5);  // Adam escapes the plateau eventually
  // Xavier is ahead of random at the mid-point of training.
  EXPECT_LT(x.loss_history[10], r.loss_history[10]);
}

TEST(TrainingExperiment, DeterministicGivenSeed) {
  const TrainingExperiment experiment(small_options());
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult a = experiment.run({xavier.get()});
  const TrainingResult b = experiment.run({xavier.get()});
  EXPECT_EQ(a.series[0].result.loss_history,
            b.series[0].result.loss_history);
}

TEST(TrainingExperiment, FindThrowsOnUnknown) {
  const TrainingExperiment experiment(small_options());
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result = experiment.run({xavier.get()});
  EXPECT_THROW((void)result.find("random"), NotFound);
}

TEST(TrainingResult, LossTableShapes) {
  TrainingExperimentOptions options = small_options();
  options.iterations = 10;
  const TrainingExperiment experiment(options);
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result = experiment.run({xavier.get()});

  const Table full = result.loss_table(1);
  EXPECT_EQ(full.rows(), 11u);  // iterations + 1
  EXPECT_EQ(full.columns(), 2u);

  // Stride 4 over 0..10: rows 0,4,8 plus the forced final row 10.
  const Table strided = result.loss_table(4);
  EXPECT_EQ(strided.rows(), 4u);
  EXPECT_EQ(strided.data().back()[0], "10");

  EXPECT_THROW((void)result.loss_table(0), InvalidArgument);
}

TEST(TrainingResult, LossTableToleratesFailedAndShortSeries) {
  // A cell that failed within the failure budget keeps its series slot
  // with an empty loss history. The table must span the longest history
  // and render NaN cells for missing entries — neither read past a
  // failed series' end nor drop all surviving data when the failed
  // series happens to come first.
  const std::string nan_cell =
      format_fixed(std::numeric_limits<double>::quiet_NaN(), 6);
  TrainingResult result;
  result.series.resize(3);
  result.series[0].initializer = "failed";  // empty history (failed cell)
  result.series[1].initializer = "ok";
  result.series[1].result.loss_history = {3.0, 2.0, 1.0, 0.5, 0.25};
  result.series[2].initializer = "aborted";  // short history
  result.series[2].result.loss_history = {3.0, 2.5};

  const Table full = result.loss_table(1);
  EXPECT_EQ(full.rows(), 5u);  // the longest history sets the row count
  EXPECT_EQ(full.columns(), 4u);
  EXPECT_EQ(full.data()[0][1], nan_cell);
  EXPECT_EQ(full.data()[0][2], format_fixed(3.0, 6));
  EXPECT_EQ(full.data()[0][3], format_fixed(3.0, 6));
  EXPECT_EQ(full.data()[4][2], format_fixed(0.25, 6));
  EXPECT_EQ(full.data()[4][3], nan_cell);  // past the short history's end

  // The forced final row obeys the same bounds.
  const Table strided = result.loss_table(3);
  EXPECT_EQ(strided.rows(), 3u);  // iterations 0, 3, and the final 4
  EXPECT_EQ(strided.data().back()[0], "4");
  EXPECT_EQ(strided.data().back()[1], nan_cell);
  EXPECT_EQ(strided.data().back()[2], format_fixed(0.25, 6));
}

TEST(TrainingResult, SummaryTableShapes) {
  const TrainingExperiment experiment(small_options());
  const TrainingResult result = experiment.run_paper_set();
  const Table summary = result.summary_table();
  EXPECT_EQ(summary.rows(), 6u);
  EXPECT_EQ(summary.columns(), 5u);
}

TEST(TrainingExperiment, ParameterShiftEngineGivesSameTraining) {
  TrainingExperimentOptions options = small_options();
  options.qubits = 3;
  options.layers = 2;
  options.iterations = 6;
  const auto xavier = make_initializer("xavier-normal");

  options.gradient_engine = "adjoint";
  const TrainingResult a = TrainingExperiment(options).run({xavier.get()});
  options.gradient_engine = "parameter-shift";
  const TrainingResult b = TrainingExperiment(options).run({xavier.get()});
  for (std::size_t i = 0; i < a.series[0].result.loss_history.size(); ++i) {
    EXPECT_NEAR(a.series[0].result.loss_history[i],
                b.series[0].result.loss_history[i], 1e-9);
  }
}

TEST(TrainingExperiment, LocalCostAlsoTrains) {
  TrainingExperimentOptions options = small_options();
  options.cost = CostKind::kLocalZero;
  options.iterations = 20;
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result =
      TrainingExperiment(options).run({xavier.get()});
  const auto& r = result.series[0].result;
  EXPECT_LT(r.final_loss, r.initial_loss);
}

}  // namespace
}  // namespace qbarren
