// Tests for the fault-isolated parallel executor: taxonomy, fault
// isolation within the failure budget, serial-compatible budget-0
// semantics, retry with fallback-path attempts, watchdog timeouts,
// cancellation, and determinism across job counts.
#include "qbarren/common/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace qbarren {
namespace {

ExecutorOptions fast_retry_options() {
  ExecutorOptions opt;
  opt.backoff_initial_seconds = 0.0;  // keep retry tests instant
  opt.backoff_max_seconds = 0.0;
  return opt;
}

TEST(CellErrorClassName, StableLowerCaseNames) {
  EXPECT_STREQ(cell_error_class_name(CellErrorClass::kException),
               "exception");
  EXPECT_STREQ(cell_error_class_name(CellErrorClass::kNonFinite),
               "non-finite");
  EXPECT_STREQ(cell_error_class_name(CellErrorClass::kTimeout), "timeout");
  EXPECT_STREQ(cell_error_class_name(CellErrorClass::kCancelled),
               "cancelled");
}

TEST(FailureSummary, OneLinePerFailureWithKeyClassAttemptsMessage) {
  std::vector<CellFailure> failures;
  failures.push_back(CellFailure{"q=8/init=random",
                                 CellErrorClass::kNonFinite,
                                 "NaN sample at circuit 3", 2});
  failures.push_back(CellFailure{"rep=1/init=he", CellErrorClass::kTimeout,
                                 "deadline", 1});
  const std::string summary = failure_summary(failures);
  EXPECT_NE(summary.find("cell q=8/init=random: non-finite after 2 "
                         "attempt(s): NaN sample at circuit 3\n"),
            std::string::npos);
  EXPECT_NE(summary.find("cell rep=1/init=he: timeout after 1 "
                         "attempt(s): deadline\n"),
            std::string::npos);
  EXPECT_TRUE(failure_summary({}).empty());
}

TEST(FailuresToJson, EveryClassRoundTripsItsName) {
  std::vector<CellFailure> failures;
  failures.push_back(
      CellFailure{"a", CellErrorClass::kException, "boom", 1});
  failures.push_back(
      CellFailure{"b", CellErrorClass::kNonFinite, "nan", 3});
  failures.push_back(
      CellFailure{"c", CellErrorClass::kTimeout, "slow", 1});
  failures.push_back(
      CellFailure{"d", CellErrorClass::kCancelled, "abort", 2});
  const std::string json = failures_to_json(failures).dump();
  EXPECT_NE(json.find("\"error\":\"exception\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"non-finite\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"cancelled\""), std::string::npos);
  EXPECT_NE(json.find("\"cell\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":3"), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"nan\""), std::string::npos);
  EXPECT_EQ(failures_to_json({}).dump(), "[]");
}

TEST(ExecutorOptionsValidation, RejectsBadTimeoutAttemptsBackoff) {
  ExecutorOptions opt;
  opt.cell_timeout_seconds = -1.0;
  EXPECT_THROW(Executor{opt}, InvalidArgument);
  opt.cell_timeout_seconds = std::nan("");
  EXPECT_THROW(Executor{opt}, InvalidArgument);

  opt = ExecutorOptions{};
  opt.max_attempts = 0;
  EXPECT_THROW(Executor{opt}, InvalidArgument);

  opt = ExecutorOptions{};
  opt.backoff_initial_seconds = -0.5;
  EXPECT_THROW(Executor{opt}, InvalidArgument);
  opt = ExecutorOptions{};
  opt.backoff_max_seconds = -0.5;
  EXPECT_THROW(Executor{opt}, InvalidArgument);

  EXPECT_NO_THROW(Executor{ExecutorOptions{}});
}

TEST(ExecutorResolveJobs, ZeroMeansHardwareConcurrencyAtLeastOne) {
  EXPECT_GE(Executor::resolve_jobs(0), 1u);
  EXPECT_EQ(Executor::resolve_jobs(1), 1u);
  EXPECT_EQ(Executor::resolve_jobs(7), 7u);
}

TEST(Executor, EmptyTaskListIsANoOp) {
  const Executor executor{ExecutorOptions{}};
  const ExecutorReport report = executor.run({});
  EXPECT_EQ(report.completed, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(Executor, RejectsTasksWithoutWork) {
  const Executor executor{ExecutorOptions{}};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"empty", nullptr});
  EXPECT_THROW((void)executor.run(std::move(tasks)), InvalidArgument);
}

TEST(Executor, DepositByKeyIsIdenticalAtAnyJobCount) {
  constexpr std::size_t kCells = 24;
  std::vector<double> reference;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    std::vector<double> out(kCells, 0.0);
    std::vector<CellTask> tasks;
    for (std::size_t i = 0; i < kCells; ++i) {
      tasks.push_back(CellTask{
          "cell=" + std::to_string(i), [&out, i](CellContext& ctx) {
            ctx.throw_if_cancelled("cell " + std::to_string(i));
            out[i] = static_cast<double>(i * i) + 0.5;
          }});
    }
    ExecutorOptions opt;
    opt.jobs = jobs;
    const ExecutorReport report = Executor{opt}.run(std::move(tasks));
    EXPECT_EQ(report.completed, kCells) << "jobs=" << jobs;
    EXPECT_TRUE(report.ok());
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << "jobs=" << jobs;
    }
  }
}

TEST(Executor, BudgetZeroRethrowsOriginalExceptionType) {
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"q=4/init=random", [](CellContext&) {
                             throw NumericalError(
                                 "non-finite gradient sample");
                           }});
  const Executor executor{ExecutorOptions{}};  // max_failures = 0
  try {
    (void)executor.run(std::move(tasks));
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite gradient sample"),
              std::string::npos);
  }
}

TEST(Executor, BudgetZeroSkipsCancelledCasualtiesWhenRethrowing) {
  // jobs=2: "a/slow" (alphabetically first) is in flight when "b/bad"
  // fails and blows the zero budget; the abort broadcast cancels
  // "a/slow", which is recorded as a kCancelled casualty that sorts
  // before the causative failure. The rethrow must surface the
  // NumericalError, not the casualty's Cancelled (the CLI maps Cancelled
  // to the SIGINT exit convention).
  std::atomic<bool> slow_started{false};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"a/slow", [&](CellContext& ctx) {
                             slow_started.store(true);
                             while (true) {
                               ctx.throw_if_cancelled("slow casualty");
                             }
                           }});
  tasks.push_back(CellTask{"b/bad", [&](CellContext&) {
                             while (!slow_started.load()) {
                             }
                             throw NumericalError("the real failure");
                           }});
  ExecutorOptions opt;
  opt.jobs = 2;
  // A finite (generous) deadline keeps the watchdog alive so the
  // budget-abort broadcast reaches the spinning casualty.
  opt.cell_timeout_seconds = 60.0;
  try {
    (void)Executor{opt}.run(std::move(tasks));
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("the real failure"),
              std::string::npos);
  }
}

TEST(Executor, BudgetZeroTimeoutRethrowsAsCellTimeoutError) {
  // A cell that merely overran its soft deadline is a run error, not a
  // user interrupt: with the default zero budget it must not rethrow as
  // Cancelled (which the CLI reports as "interrupted", exit 130).
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"stuck", [](CellContext& ctx) {
                             while (true) {
                               ctx.throw_if_cancelled("stuck cell");
                             }
                           }});
  ExecutorOptions opt;  // max_failures = 0
  opt.cell_timeout_seconds = 0.05;
  try {
    (void)Executor{opt}.run(std::move(tasks));
    FAIL() << "expected CellTimeoutError";
  } catch (const CellTimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck"), std::string::npos) << what;
    EXPECT_NE(what.find("soft deadline"), std::string::npos) << what;
  }
}

TEST(Executor, FaultIsolationOneBadCellDoesNotSinkTheRun) {
  std::vector<double> out(5, 0.0);
  std::vector<CellTask> tasks;
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) {
      tasks.push_back(CellTask{"cell=2", [](CellContext&) {
                                 throw std::runtime_error("boom");
                               }});
    } else {
      tasks.push_back(CellTask{"cell=" + std::to_string(i),
                               [&out, i](CellContext&) { out[i] = 1.0; }});
    }
  }
  ExecutorOptions opt;
  opt.jobs = 2;
  opt.max_failures = 1;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  EXPECT_EQ(report.completed, 4u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "cell=2");
  EXPECT_EQ(report.failures[0].error, CellErrorClass::kException);
  EXPECT_EQ(report.failures[0].attempts, 1u);
  EXPECT_EQ(report.failures[0].message, "boom");
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], i == 2 ? 0.0 : 1.0) << "cell " << i;
  }
}

TEST(Executor, BudgetExceededAbortsWithAllRecordedFailures) {
  std::vector<CellTask> tasks;
  for (const char* key : {"a", "b", "c"}) {
    tasks.push_back(CellTask{key, [key](CellContext&) {
                               throw std::runtime_error(
                                   std::string("bad ") + key);
                             }});
  }
  ExecutorOptions opt;
  opt.max_failures = 1;  // second failure blows the budget
  try {
    (void)Executor{opt}.run(std::move(tasks));
    FAIL() << "expected FailureBudgetExceeded";
  } catch (const FailureBudgetExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("failure budget exceeded"),
              std::string::npos);
    // jobs=1: "a" fails within budget, "b" blows it, "c" is never issued.
    EXPECT_NE(std::string(e.what()).find("2 failed cells, budget 1"),
              std::string::npos);
    ASSERT_GE(e.failures().size(), 2u);
    // Sorted by cell key regardless of completion order.
    for (std::size_t i = 1; i < e.failures().size(); ++i) {
      EXPECT_LT(e.failures()[i - 1].cell, e.failures()[i].cell);
    }
  }
}

TEST(Executor, RetryRecoversNonFiniteViaTheAttemptNumber) {
  std::atomic<std::size_t> invocations{0};
  double out = 0.0;
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"flaky", [&](CellContext& ctx) {
                             invocations.fetch_add(1);
                             if (ctx.attempt == 0) {
                               throw NumericalError("NaN on first try");
                             }
                             out = 42.0;  // fallback path on retry
                           }});
  ExecutorOptions opt = fast_retry_options();
  opt.max_attempts = 2;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  EXPECT_EQ(report.completed, 1u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(invocations.load(), 2u);
  EXPECT_EQ(out, 42.0);
}

TEST(Executor, RetryExhaustionReportsNonFiniteWithAttemptCount) {
  std::atomic<std::size_t> invocations{0};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"hopeless", [&](CellContext&) {
                             invocations.fetch_add(1);
                             throw NumericalError("always NaN");
                           }});
  ExecutorOptions opt = fast_retry_options();
  opt.max_attempts = 3;
  opt.max_failures = 1;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  EXPECT_EQ(report.completed, 0u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].error, CellErrorClass::kNonFinite);
  EXPECT_EQ(report.failures[0].attempts, 3u);
  EXPECT_EQ(invocations.load(), 3u);
}

TEST(Executor, GenericExceptionsAreNotRetried) {
  std::atomic<std::size_t> invocations{0};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"broken", [&](CellContext&) {
                             invocations.fetch_add(1);
                             throw std::runtime_error("logic bug");
                           }});
  ExecutorOptions opt = fast_retry_options();
  opt.max_attempts = 5;
  opt.max_failures = 1;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].error, CellErrorClass::kException);
  EXPECT_EQ(report.failures[0].attempts, 1u);
  EXPECT_EQ(invocations.load(), 1u);  // retry is for non-finite only
}

TEST(Executor, WatchdogTimesOutStuckCellWhileOthersComplete) {
  double fast_out = 0.0;
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"stuck", [](CellContext& ctx) {
                             // Cooperative spin: poll until the watchdog
                             // fires the deadline.
                             while (true) {
                               ctx.throw_if_cancelled("stuck cell");
                             }
                           }});
  tasks.push_back(CellTask{"fast", [&fast_out](CellContext&) {
                             fast_out = 1.0;
                           }});
  ExecutorOptions opt;
  opt.jobs = 2;
  opt.cell_timeout_seconds = 0.05;
  opt.max_failures = 1;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(fast_out, 1.0);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "stuck");
  EXPECT_EQ(report.failures[0].error, CellErrorClass::kTimeout);
  EXPECT_NE(report.failures[0].message.find("soft deadline"),
            std::string::npos);
  EXPECT_NE(report.failures[0].message.find("stuck cell"),
            std::string::npos);
}

TEST(Executor, ThrowingAndTimingOutCellsAreBothIsolatedAndClassified) {
  // The acceptance grid: one cell always throws, one overruns its
  // deadline, the rest complete. Within the budget the run finishes and
  // reports both failures with the right class; beyond it, it aborts.
  const auto make_tasks = [](std::vector<double>& out) {
    std::vector<CellTask> tasks;
    tasks.push_back(CellTask{"grid=0/bad", [](CellContext&) {
                               throw std::runtime_error("always throws");
                             }});
    tasks.push_back(CellTask{"grid=1/slow", [](CellContext& ctx) {
                               while (true) {
                                 ctx.throw_if_cancelled("slow cell");
                               }
                             }});
    for (std::size_t i = 0; i < 3; ++i) {
      tasks.push_back(CellTask{"grid=" + std::to_string(i + 2) + "/ok",
                               [&out, i](CellContext&) { out[i] = 1.0; }});
    }
    return tasks;
  };

  ExecutorOptions opt;
  opt.jobs = 2;
  opt.cell_timeout_seconds = 0.05;
  opt.max_failures = 2;
  std::vector<double> out(3, 0.0);
  const ExecutorReport report = Executor{opt}.run(make_tasks(out));
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(out, std::vector<double>({1.0, 1.0, 1.0}));
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].cell, "grid=0/bad");
  EXPECT_EQ(report.failures[0].error, CellErrorClass::kException);
  EXPECT_EQ(report.failures[1].cell, "grid=1/slow");
  EXPECT_EQ(report.failures[1].error, CellErrorClass::kTimeout);
  const std::string summary = failure_summary(report.failures);
  EXPECT_NE(summary.find("grid=0/bad: exception"), std::string::npos);
  EXPECT_NE(summary.find("grid=1/slow: timeout"), std::string::npos);

  // The same grid with a one-failure budget blows the circuit breaker.
  opt.max_failures = 1;
  std::vector<double> out2(3, 0.0);
  EXPECT_THROW((void)Executor{opt}.run(make_tasks(out2)),
               FailureBudgetExceeded);
}

TEST(Executor, PreCancelledRunStartsNothing) {
  CancellationToken token;
  token.request_cancel();
  std::atomic<std::size_t> invocations{0};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"never", [&](CellContext&) {
                             invocations.fetch_add(1);
                           }});
  ExecutorOptions opt;
  opt.cancel = &token;
  EXPECT_THROW((void)Executor{opt}.run(std::move(tasks)), Cancelled);
  EXPECT_EQ(invocations.load(), 0u);
}

TEST(Executor, MidRunCancellationStopsAtTheNextCellBoundary) {
  CancellationToken token;
  std::atomic<std::size_t> invocations{0};
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"first", [&](CellContext& ctx) {
                             invocations.fetch_add(1);
                             token.request_cancel();
                             ctx.throw_if_cancelled("first interrupted");
                           }});
  tasks.push_back(CellTask{"second", [&](CellContext&) {
                             invocations.fetch_add(1);
                           }});
  ExecutorOptions opt;
  opt.jobs = 1;
  opt.cancel = &token;
  try {
    (void)Executor{opt}.run(std::move(tasks));
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    // The original in-cell Cancelled (with its context) propagates.
    EXPECT_NE(std::string(e.what()).find("first interrupted"),
              std::string::npos);
  }
  EXPECT_EQ(invocations.load(), 1u);  // "second" was never issued
}

TEST(Executor, RunWideCancellationIsNotACellFailure) {
  // A cell that completes after the run token fires is still counted as
  // completed; cancellation is an interrupt, not a cell error.
  CancellationToken token;
  std::vector<CellTask> tasks;
  tasks.push_back(CellTask{"finishes", [&](CellContext&) {
                             token.request_cancel();
                             // returns normally: its deposit stands
                           }});
  tasks.push_back(CellTask{"skipped", [](CellContext&) {}});
  ExecutorOptions opt;
  opt.jobs = 1;
  opt.cancel = &token;
  EXPECT_THROW((void)Executor{opt}.run(std::move(tasks)), Cancelled);
}

TEST(CellContext, ChecksBothTokens) {
  CancellationToken cell_token;
  CancellationToken run_token;
  CellContext ctx{&cell_token, &run_token, 0};
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_NO_THROW(ctx.throw_if_cancelled("work"));

  run_token.request_cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_THROW(ctx.throw_if_cancelled("work"), Cancelled);

  CancellationToken cell_only;
  cell_only.request_cancel();
  CellContext deadline_ctx{&cell_only, nullptr, 1};
  EXPECT_TRUE(deadline_ctx.cancelled());
  EXPECT_THROW(deadline_ctx.throw_if_cancelled("work"), Cancelled);
  EXPECT_EQ(deadline_ctx.attempt, 1u);
}

TEST(Executor, ManyMoreTasksThanWorkersAllComplete) {
  constexpr std::size_t kCells = 101;
  std::atomic<std::size_t> sum{0};
  std::vector<CellTask> tasks;
  for (std::size_t i = 0; i < kCells; ++i) {
    tasks.push_back(CellTask{"cell=" + std::to_string(i),
                             [&sum, i](CellContext&) {
                               sum.fetch_add(i + 1);
                             }});
  }
  ExecutorOptions opt;
  opt.jobs = 8;
  const ExecutorReport report = Executor{opt}.run(std::move(tasks));
  EXPECT_EQ(report.completed, kCells);
  EXPECT_EQ(sum.load(), kCells * (kCells + 1) / 2);
}

}  // namespace
}  // namespace qbarren
