// Unit tests for qbarren::Rng — determinism, stream independence, and
// distribution moments.
#include "qbarren/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "qbarren/common/error.hpp"
#include "qbarren/common/stats.hpp"

namespace qbarren {
namespace {

TEST(Splitmix64, IsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Single-bit input flips should change many output bits.
  const std::uint64_t a = splitmix64(0x1);
  const std::uint64_t b = splitmix64(0x2);
  int differing_bits = 0;
  for (int i = 0; i < 64; ++i) {
    if (((a ^ b) >> i) & 1u) ++differing_bits;
  }
  EXPECT_GT(differing_bits, 16);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, ChildStreamsAreIndependentOfParentConsumption) {
  Rng parent1(7);
  (void)parent1.uniform(0.0, 1.0);  // consume some parent output
  Rng child_after = parent1.child(3);

  const Rng parent2(7);
  Rng child_fresh = parent2.child(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child_after.uniform(0.0, 1.0),
                     child_fresh.uniform(0.0, 1.0));
  }
}

TEST(Rng, ChildStreamsWithDistinctIndicesDiffer) {
  const Rng parent(7);
  Rng c0 = parent.child(0);
  Rng c1 = parent.child(1);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (c0.uniform(0.0, 1.0) != c1.uniform(0.0, 1.0)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, ChildZeroDiffersFromParentStream) {
  Rng parent(5);
  Rng child = Rng(5).child(0);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.uniform(0.0, 1.0) != child.uniform(0.0, 1.0)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRejectsEmptyInterval) {
  Rng rng(11);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(13);
  const auto xs = rng.uniform_vector(20000, 0.0, 1.0);
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
  EXPECT_NEAR(sample_variance(xs), 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const auto xs = rng.normal_vector(20000);
  EXPECT_NEAR(mean(xs), 0.0, 0.03);
  EXPECT_NEAR(sample_variance(xs), 1.0, 0.05);
}

TEST(Rng, NormalWithParamsMatches) {
  Rng rng(19);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.02);
  EXPECT_NEAR(sample_stddev(xs), 0.5, 0.02);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(19);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(19);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BetaMomentsMatch) {
  Rng rng(23);
  const double alpha = 2.0;
  const double beta = 5.0;
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.beta(alpha, beta);
  const double expected_mean = alpha / (alpha + beta);
  const double expected_var = alpha * beta /
                              ((alpha + beta) * (alpha + beta) *
                               (alpha + beta + 1.0));
  EXPECT_NEAR(mean(xs), expected_mean, 0.01);
  EXPECT_NEAR(sample_variance(xs), expected_var, 0.005);
}

TEST(Rng, BetaStaysInUnitInterval) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.beta(0.5, 0.5);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, BetaRejectsNonPositiveShapes) {
  Rng rng(29);
  EXPECT_THROW((void)rng.beta(0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)rng.beta(1.0, -1.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(31);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(31);
  EXPECT_THROW((void)rng.uniform_int(5, 3), InvalidArgument);
}

TEST(Rng, IndexStaysInRangeAndCoversAll) {
  Rng rng(37);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::size_t v = rng.index(4);
    EXPECT_LT(v, 4u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(37);
  EXPECT_THROW((void)rng.index(0), InvalidArgument);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(41);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(41);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_THROW((void)rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW((void)rng.bernoulli(-0.1), InvalidArgument);
}

TEST(Rng, VectorHelpersProduceRequestedSizes) {
  Rng rng(43);
  EXPECT_EQ(rng.normal_vector(17).size(), 17u);
  EXPECT_EQ(rng.uniform_vector(5, 0.0, 1.0).size(), 5u);
  EXPECT_TRUE(rng.normal_vector(0).empty());
}

}  // namespace
}  // namespace qbarren
