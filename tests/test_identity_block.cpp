// Tests for the Grant-et-al identity-block ansatz and its initialization.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {
namespace {

TEST(MirrorBlockAnsatz, StructureCounts) {
  Rng rng(1);
  const MirrorBlockAnsatz ansatz = mirror_block_ansatz(3, 2, 2, rng);
  // Per block: 2 forward layers (3 rot + 2 CZ each) + mirror of the same.
  EXPECT_EQ(ansatz.circuit.num_operations(), 2u * 2u * (2u * 5u));
  EXPECT_EQ(ansatz.circuit.num_parameters(), 2u * 2u * 2u * 3u);
  EXPECT_EQ(ansatz.mirror_pairs.size(),
            ansatz.circuit.num_parameters() / 2);
  ASSERT_TRUE(ansatz.circuit.layer_shape().has_value());
  EXPECT_EQ(ansatz.circuit.layer_shape()->layers, 8u);
}

TEST(MirrorBlockAnsatz, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW((void)mirror_block_ansatz(3, 0, 1, rng), InvalidArgument);
  EXPECT_THROW((void)mirror_block_ansatz(3, 1, 0, rng), InvalidArgument);
}

TEST(MirrorBlockAnsatz, PairsLinkMatchingAxes) {
  Rng rng(2);
  const MirrorBlockAnsatz ansatz = mirror_block_ansatz(4, 3, 1, rng);
  // Collect (param -> axis) for every rotation.
  std::vector<gates::Axis> axis_of(ansatz.circuit.num_parameters());
  for (const Operation& op : ansatz.circuit.operations()) {
    if (op.kind == OpKind::kRotation) {
      axis_of[op.param_index] = op.axis;
    }
  }
  for (const auto& [fwd, mir] : ansatz.mirror_pairs) {
    EXPECT_EQ(axis_of[fwd], axis_of[mir]);
  }
}

TEST(IdentityBlocks, InitialStateIsExactlyZero) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng structure_rng(seed);
    const MirrorBlockAnsatz ansatz =
        mirror_block_ansatz(4, 2, 3, structure_rng);
    Rng param_rng(seed + 100);
    const auto params = initialize_identity_blocks(ansatz, param_rng);

    const StateVector state = ansatz.circuit.simulate(params);
    EXPECT_NEAR(state.probability(0), 1.0, 1e-10) << "seed " << seed;
  }
}

TEST(IdentityBlocks, ParamsPairedAsNegations) {
  Rng structure_rng(3);
  const MirrorBlockAnsatz ansatz = mirror_block_ansatz(2, 2, 1, structure_rng);
  Rng param_rng(4);
  const auto params = initialize_identity_blocks(ansatz, param_rng);
  for (const auto& [fwd, mir] : ansatz.mirror_pairs) {
    EXPECT_DOUBLE_EQ(params[mir], -params[fwd]);
    EXPECT_GE(params[fwd], 0.0);
    EXPECT_LT(params[fwd], 2.0 * M_PI);
  }
}

TEST(IdentityBlocks, ValidatesRange) {
  Rng structure_rng(3);
  const MirrorBlockAnsatz ansatz = mirror_block_ansatz(2, 1, 1, structure_rng);
  Rng rng(1);
  EXPECT_THROW((void)initialize_identity_blocks(ansatz, rng, 1.0, 1.0),
               InvalidArgument);
}

TEST(IdentityBlocks, GradientVarianceBeatsPlainRandomAtWidth) {
  // The §II-a mechanism: identity-block initialization keeps gradients
  // alive at widths where uniform-random deep circuits have lost them.
  // Measured with <X_0>: for the identity-learning cost the identity
  // point is the exact global minimum, where gradients are legitimately
  // zero — Grant et al.'s claim concerns generic observables, for which
  // |0...0> is not an eigenstate.
  const std::size_t qubits = 6;
  const std::size_t trials = 25;
  std::string x0(qubits, 'I');
  x0[0] = 'X';
  const PauliStringObservable obs(x0);
  const ParameterShiftEngine engine;

  std::vector<double> block_grads;
  std::vector<double> random_grads;
  const auto random_init = make_initializer("random");
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng structure_rng = Rng(50).child(t);
    const MirrorBlockAnsatz ansatz =
        mirror_block_ansatz(qubits, 2, 5, structure_rng);  // depth 20 layers
    Rng param_rng = Rng(60).child(t);
    const auto block_params =
        initialize_identity_blocks(ansatz, param_rng);
    block_grads.push_back(engine.partial(ansatz.circuit, obs, block_params,
                                         0));

    // Same circuit with fully random parameters.
    Rng rand_rng = Rng(70).child(t);
    const auto rand_params =
        random_init->initialize(ansatz.circuit, rand_rng);
    random_grads.push_back(
        engine.partial(ansatz.circuit, obs, rand_params, 0));
  }
  EXPECT_GT(sample_variance(block_grads),
            3.0 * sample_variance(random_grads));
}

TEST(IdentityBlocks, TrainableFromIdentityStart) {
  // Although the circuit starts at the cost minimum for the identity task
  // (cost 0), the structure is still generically trainable: perturb one
  // parameter and check the cost becomes sensitive (no saddle lock-in).
  Rng structure_rng(9);
  const MirrorBlockAnsatz ansatz = mirror_block_ansatz(3, 1, 2, structure_rng);
  Rng param_rng(10);
  auto params = initialize_identity_blocks(ansatz, param_rng);
  const GlobalZeroObservable obs(3);
  params[0] += 0.3;  // break one mirror pair
  const StateVector state = ansatz.circuit.simulate(params);
  EXPECT_GT(obs.expectation(state), 1e-4);
}

}  // namespace
}  // namespace qbarren
