// Tests for the OpenQASM 2.0 parser, including round-trips with the
// printer.
#include "qbarren/circuit/qasm_parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/printer.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {
namespace {

TEST(QasmParser, MinimalProgram) {
  const ParsedQasm parsed = parse_qasm(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\n");
  EXPECT_EQ(parsed.circuit.num_qubits(), 2u);
  EXPECT_EQ(parsed.circuit.num_operations(), 1u);
  EXPECT_EQ(parsed.circuit.operations()[0].kind, OpKind::kHadamard);
  EXPECT_TRUE(parsed.parameters.empty());
}

TEST(QasmParser, RotationsBecomeTrainableParameters) {
  const ParsedQasm parsed = parse_qasm(
      "OPENQASM 2.0;\nqreg q[1];\nrx(0.25) q[0];\nry(-1.5) q[0];\n"
      "rz(2e-3) q[0];\n");
  EXPECT_EQ(parsed.circuit.num_parameters(), 3u);
  ASSERT_EQ(parsed.parameters.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.parameters[0], 0.25);
  EXPECT_DOUBLE_EQ(parsed.parameters[1], -1.5);
  EXPECT_DOUBLE_EQ(parsed.parameters[2], 2e-3);
  EXPECT_EQ(parsed.circuit.operations()[0].axis, gates::Axis::kX);
  EXPECT_EQ(parsed.circuit.operations()[1].axis, gates::Axis::kY);
  EXPECT_EQ(parsed.circuit.operations()[2].axis, gates::Axis::kZ);
}

TEST(QasmParser, PiExpressions) {
  const ParsedQasm parsed = parse_qasm(
      "OPENQASM 2.0;\nqreg q[1];\nrx(pi) q[0];\nry(pi/2) q[0];\n"
      "rz(-pi/4) q[0];\nrx(3*pi/4) q[0];\n");
  ASSERT_EQ(parsed.parameters.size(), 4u);
  EXPECT_NEAR(parsed.parameters[0], M_PI, 1e-12);
  EXPECT_NEAR(parsed.parameters[1], M_PI / 2.0, 1e-12);
  EXPECT_NEAR(parsed.parameters[2], -M_PI / 4.0, 1e-12);
  EXPECT_NEAR(parsed.parameters[3], 3.0 * M_PI / 4.0, 1e-12);
}

TEST(QasmParser, TwoQubitGates) {
  const ParsedQasm parsed = parse_qasm(
      "OPENQASM 2.0;\nqreg q[3];\ncz q[0], q[1];\ncx q[1], q[2];\n"
      "swap q[0], q[2];\n");
  const auto& ops = parsed.circuit.operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, OpKind::kCz);
  EXPECT_EQ(ops[1].kind, OpKind::kCnot);
  EXPECT_EQ(ops[1].qubit0, 1u);
  EXPECT_EQ(ops[1].qubit1, 2u);
  EXPECT_EQ(ops[2].kind, OpKind::kSwap);
}

TEST(QasmParser, CommentsAndBlankLinesSkipped) {
  const ParsedQasm parsed = parse_qasm(
      "OPENQASM 2.0;\n// a comment\n\nqreg q[1];\nx q[0]; // trailing\n");
  EXPECT_EQ(parsed.circuit.num_operations(), 1u);
}

TEST(QasmParser, MultipleStatementsPerLine) {
  const ParsedQasm parsed =
      parse_qasm("OPENQASM 2.0; qreg q[2]; h q[0]; cz q[0], q[1];");
  EXPECT_EQ(parsed.circuit.num_operations(), 2u);
}

TEST(QasmParser, CregIgnored) {
  const ParsedQasm parsed =
      parse_qasm("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nz q[0];\n");
  EXPECT_EQ(parsed.circuit.num_operations(), 1u);
}

TEST(QasmParser, ErrorCases) {
  // Missing header.
  EXPECT_THROW((void)parse_qasm("qreg q[1];\n"), InvalidArgument);
  // Missing qreg.
  EXPECT_THROW((void)parse_qasm("OPENQASM 2.0;\n"), InvalidArgument);
  // Gate before qreg.
  EXPECT_THROW((void)parse_qasm("OPENQASM 2.0;\nh q[0];\nqreg q[1];\n"),
               InvalidArgument);
  // Unknown gate.
  EXPECT_THROW(
      (void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nccx q[0];\n"),
      InvalidArgument);
  // Out-of-range qubit.
  EXPECT_THROW((void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[1];\n"),
               InvalidArgument);
  // Wrong register name.
  EXPECT_THROW((void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh r[0];\n"),
               InvalidArgument);
  // Bad angle.
  EXPECT_THROW(
      (void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(abc) q[0];\n"),
      InvalidArgument);
  // Division by zero in the angle grammar.
  EXPECT_THROW(
      (void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(pi/0) q[0];\n"),
      InvalidArgument);
  // Missing second operand.
  EXPECT_THROW(
      (void)parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncz q[0];\n"),
      InvalidArgument);
  // Zero-width register.
  EXPECT_THROW((void)parse_qasm("OPENQASM 2.0;\nqreg q[0];\n"),
               InvalidArgument);
  // Duplicate qreg.
  EXPECT_THROW(
      (void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nqreg r[1];\n"),
      InvalidArgument);
}

TEST(QasmParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_qasm("OPENQASM 2.0;\nqreg q[1];\nbadgate q[0];\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(QasmParser, RoundTripWithPrinter) {
  // Dump the Eq 3 ansatz, parse it back, and check the simulated states
  // agree amplitude-for-amplitude.
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit original = training_ansatz(3, options);
  Rng rng(8);
  const auto params =
      rng.uniform_vector(original.num_parameters(), -3.0, 3.0);

  const std::string qasm = to_qasm(original, params);
  const ParsedQasm parsed = parse_qasm(qasm);

  ASSERT_EQ(parsed.circuit.num_qubits(), original.num_qubits());
  ASSERT_EQ(parsed.circuit.num_parameters(), original.num_parameters());

  const StateVector a = original.simulate(params);
  const StateVector b = parsed.circuit.simulate(parsed.parameters);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST(QasmParser, DoubleRoundTripIsStable) {
  TrainingAnsatzOptions options;
  options.layers = 1;
  const Circuit original = training_ansatz(2, options);
  Rng rng(9);
  const auto params =
      rng.uniform_vector(original.num_parameters(), 0.0, 6.0);
  const ParsedQasm once = parse_qasm(to_qasm(original, params));
  const ParsedQasm twice =
      parse_qasm(to_qasm(once.circuit, once.parameters));
  EXPECT_EQ(once.circuit.num_operations(), twice.circuit.num_operations());
  for (std::size_t i = 0; i < once.parameters.size(); ++i) {
    EXPECT_NEAR(once.parameters[i], twice.parameters[i], 1e-9);
  }
}

}  // namespace
}  // namespace qbarren
