// Tests for masked and growing layer-wise training.
#include "qbarren/opt/layerwise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

CostFunction layered_cost(std::size_t qubits, std::size_t layers) {
  TrainingAnsatzOptions options;
  options.layers = layers;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(qubits, options));
  return make_identity_cost(circuit);
}

TEST(Layerwise, RequiresLayerShape) {
  Circuit raw(2);
  raw.add_rotation(gates::Axis::kY, 0);
  raw.add_rotation(gates::Axis::kY, 1);
  auto circuit = std::make_shared<const Circuit>(std::move(raw));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;
  EXPECT_THROW(
      (void)train_layerwise(cost, engine, std::vector<double>{0.1, 0.2}),
      InvalidArgument);
}

TEST(Layerwise, ValidatesInitialParams) {
  const CostFunction cost = layered_cost(2, 2);
  const AdjointEngine engine;
  EXPECT_THROW((void)train_layerwise(cost, engine, {0.1}), InvalidArgument);
}

TEST(Layerwise, StagesFreezeOtherLayers) {
  const CostFunction cost = layered_cost(2, 3);  // 4 params per layer
  const AdjointEngine engine;
  LayerwiseOptions options;
  options.iterations_per_layer = 1;
  options.final_sweep_iterations = 0;
  options.learning_rate = 0.1;

  std::vector<double> init(cost.num_parameters(), 0.3);
  const TrainResult result = train_layerwise(cost, engine, init, options);

  // 3 stages of 1 iteration each; loss history = 1 + 3.
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_EQ(result.loss_history.size(), 4u);
  // After stage 1 (one GD step on layer 0 only), layers 1 and 2 must be
  // untouched... but stages run sequentially, so compare against a manual
  // single-stage run: layer-2 parameters can only have changed during the
  // third stage. Easiest invariant: the run is deterministic and the
  // total parameter count is preserved.
  EXPECT_EQ(result.final_params.size(), cost.num_parameters());
}

TEST(Layerwise, FrozenParametersUnchangedWithZeroStages) {
  // With iterations_per_layer = 0 and a final sweep of 0, nothing moves.
  const CostFunction cost = layered_cost(2, 2);
  const AdjointEngine engine;
  LayerwiseOptions options;
  options.iterations_per_layer = 0;
  const std::vector<double> init(cost.num_parameters(), 0.25);
  const TrainResult result = train_layerwise(cost, engine, init, options);
  EXPECT_EQ(result.final_params, init);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Layerwise, ReducesLossOnIdentityTask) {
  const CostFunction cost = layered_cost(3, 3);
  const AdjointEngine engine;
  LayerwiseOptions options;
  options.iterations_per_layer = 15;
  options.final_sweep_iterations = 15;
  options.learning_rate = 0.2;
  const std::vector<double> init(cost.num_parameters(), 0.4);
  const TrainResult result = train_layerwise(cost, engine, init, options);
  EXPECT_LT(result.final_loss, 0.05);
  EXPECT_LT(result.final_loss, result.initial_loss);
  // 3 layers * 15 + 15 sweep iterations.
  EXPECT_EQ(result.iterations, 60u);
}

TEST(Layerwise, OnlyMaskedGradientEntriesRecorded) {
  const CostFunction cost = layered_cost(2, 2);
  const AdjointEngine engine;
  LayerwiseOptions options;
  options.iterations_per_layer = 2;
  options.record_gradient_norms = true;
  const std::vector<double> init(cost.num_parameters(), 0.3);
  const TrainResult result = train_layerwise(cost, engine, init, options);
  EXPECT_EQ(result.gradient_norm_history.size(), 4u);
}

TEST(GrowingLayerwise, ValidatesOptions) {
  const AdjointEngine engine;
  GrowingLayerwiseOptions options;
  options.qubits = 3;
  EXPECT_THROW((void)train_layerwise_growing(nullptr, engine, options),
               InvalidArgument);
  auto wrong_width = std::make_shared<GlobalZeroObservable>(2);
  EXPECT_THROW((void)train_layerwise_growing(wrong_width, engine, options),
               InvalidArgument);
  auto obs = std::make_shared<GlobalZeroObservable>(3);
  options.total_layers = 0;
  EXPECT_THROW((void)train_layerwise_growing(obs, engine, options),
               InvalidArgument);
}

TEST(GrowingLayerwise, FinalParamsSpanFullAnsatz) {
  const AdjointEngine engine;
  GrowingLayerwiseOptions options;
  options.qubits = 3;
  options.total_layers = 4;
  options.iterations_per_stage = 2;
  options.seed = 11;
  auto obs = std::make_shared<GlobalZeroObservable>(3);
  const TrainResult result =
      train_layerwise_growing(obs, engine, options);
  EXPECT_EQ(result.final_params.size(), 4u * 2u * 3u);
  EXPECT_EQ(result.iterations, 8u);
  EXPECT_EQ(result.loss_history.size(), 9u);
}

TEST(GrowingLayerwise, LossContinuousAcrossGrowth) {
  // Appending an identity layer must not change the loss: the loss after
  // stage s's last iteration equals the loss before stage s+1's first
  // update, which the concatenated history makes adjacent.
  const AdjointEngine engine;
  GrowingLayerwiseOptions options;
  options.qubits = 2;
  options.total_layers = 3;
  options.iterations_per_stage = 4;
  options.seed = 3;
  auto obs = std::make_shared<GlobalZeroObservable>(2);
  const TrainResult result =
      train_layerwise_growing(obs, engine, options);
  // The history is continuous by construction; verify the training made
  // progress overall and bookkeeping is consistent.
  EXPECT_LT(result.final_loss, result.initial_loss);
  EXPECT_DOUBLE_EQ(result.loss_history.back(), result.final_loss);
}

TEST(GrowingLayerwise, EscapesWhereFullRandomTrainingStalls) {
  // The §II-c motivation: at 6 qubits with random initialization and the
  // global cost, full-circuit GD stalls (see test_training_experiment);
  // growing layer-wise training starts from a 1-layer circuit and learns.
  // Note the global cost makes even the 1-layer landscape shallow (the
  // gradient is a product over qubits), so the stages use Adam — the same
  // optimizer contrast the paper draws in Fig 5c.
  const AdjointEngine engine;
  GrowingLayerwiseOptions options;
  options.qubits = 6;
  options.total_layers = 3;
  options.iterations_per_stage = 25;
  options.learning_rate = 0.1;
  options.optimizer = "adam";
  options.seed = 7;
  auto obs = std::make_shared<GlobalZeroObservable>(6);
  const TrainResult result =
      train_layerwise_growing(obs, engine, options);
  EXPECT_GT(result.initial_loss, 0.5);
  EXPECT_LT(result.final_loss, 0.2);
}

TEST(GrowingLayerwise, DeterministicGivenSeed) {
  const AdjointEngine engine;
  GrowingLayerwiseOptions options;
  options.qubits = 2;
  options.total_layers = 2;
  options.iterations_per_stage = 3;
  options.seed = 19;
  auto obs = std::make_shared<GlobalZeroObservable>(2);
  const TrainResult a = train_layerwise_growing(obs, engine, options);
  const TrainResult b = train_layerwise_growing(obs, engine, options);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.final_params, b.final_params);
}

}  // namespace
}  // namespace qbarren
