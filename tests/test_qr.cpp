// Unit and property tests for Householder QR and random orthogonal
// matrices (substrate of the Orthogonal initializer).
#include "qbarren/linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/rng.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

RealMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  RealMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.normal();
    }
  }
  return m;
}

TEST(Qr, ReconstructsSquareMatrix) {
  Rng rng(1);
  const RealMatrix a = random_matrix(4, 4, rng);
  const QrResult qr = qr_decompose(a);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-10);
  EXPECT_TRUE(has_orthonormal_columns(qr.q, 1e-10));
}

TEST(Qr, ReconstructsTallMatrix) {
  Rng rng(2);
  const RealMatrix a = random_matrix(7, 3, rng);
  const QrResult qr = qr_decompose(a);
  EXPECT_EQ(qr.q.rows(), 7u);
  EXPECT_EQ(qr.q.cols(), 3u);
  EXPECT_EQ(qr.r.rows(), 3u);
  EXPECT_EQ(qr.r.cols(), 3u);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-10);
  EXPECT_TRUE(has_orthonormal_columns(qr.q, 1e-10));
}

TEST(Qr, ReconstructsWideMatrix) {
  Rng rng(3);
  const RealMatrix a = random_matrix(3, 6, rng);
  const QrResult qr = qr_decompose(a);
  EXPECT_EQ(qr.q.rows(), 3u);
  EXPECT_EQ(qr.q.cols(), 3u);
  EXPECT_EQ(qr.r.rows(), 3u);
  EXPECT_EQ(qr.r.cols(), 6u);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-10);
}

TEST(Qr, RIsUpperTriangularWithNonNegativeDiagonal) {
  Rng rng(4);
  const RealMatrix a = random_matrix(5, 5, rng);
  const QrResult qr = qr_decompose(a);
  for (std::size_t r = 0; r < qr.r.rows(); ++r) {
    EXPECT_GE(qr.r(r, r), 0.0);
    for (std::size_t c = 0; c < r; ++c) {
      EXPECT_DOUBLE_EQ(qr.r(r, c), 0.0);
    }
  }
}

TEST(Qr, IdentityFactorsTrivially) {
  const RealMatrix id = RealMatrix::identity(3);
  const QrResult qr = qr_decompose(id);
  EXPECT_LT(max_abs_diff(qr.q, id), 1e-12);
  EXPECT_LT(max_abs_diff(qr.r, id), 1e-12);
}

TEST(Qr, HandlesZeroColumn) {
  RealMatrix a(3, 2);
  a(0, 1) = 1.0;  // first column all zero
  const QrResult qr = qr_decompose(a);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-12);
}

TEST(Qr, OneByOne) {
  const RealMatrix a(1, 1, {-3.0});
  const QrResult qr = qr_decompose(a);
  // Sign convention: R diagonal non-negative.
  EXPECT_DOUBLE_EQ(qr.r(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(qr.q(0, 0), -1.0);
}

TEST(RandomOrthogonal, ColumnsAreOrthonormal) {
  Rng rng(5);
  const RealMatrix q = random_orthogonal(8, 4, rng);
  EXPECT_TRUE(has_orthonormal_columns(q, 1e-10));
}

TEST(RandomOrthogonal, SquareIsFullyOrthogonal) {
  Rng rng(6);
  const RealMatrix q = random_orthogonal(5, 5, rng);
  EXPECT_TRUE(has_orthonormal_columns(q, 1e-10));
  EXPECT_TRUE(has_orthonormal_columns(q.transpose(), 1e-10));
}

TEST(RandomOrthogonal, RejectsWideRequest) {
  Rng rng(7);
  EXPECT_THROW((void)random_orthogonal(2, 5, rng), InvalidArgument);
}

TEST(RandomOrthogonal, IsDeterministicGivenSeed) {
  Rng a(9);
  Rng b(9);
  const RealMatrix qa = random_orthogonal(4, 4, a);
  const RealMatrix qb = random_orthogonal(4, 4, b);
  EXPECT_DOUBLE_EQ(max_abs_diff(qa, qb), 0.0);
}

TEST(RandomOrthogonal, EntryVarianceMatchesHaar) {
  // For a Haar orthogonal matrix with n rows, entries have variance 1/n.
  Rng rng(10);
  const std::size_t n = 16;
  std::vector<double> entries;
  for (int trial = 0; trial < 60; ++trial) {
    const RealMatrix q = random_orthogonal(n, n, rng);
    for (const double v : q.data()) {
      entries.push_back(v);
    }
  }
  EXPECT_NEAR(mean(entries), 0.0, 0.01);
  EXPECT_NEAR(sample_variance(entries), 1.0 / static_cast<double>(n),
              0.01);
}

// Property sweep over shapes: reconstruction and orthogonality hold for
// every shape the Orthogonal initializer can request.
class QrShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, ReconstructionAndOrthogonality) {
  const auto [rows, cols] = GetParam();
  Rng rng(splitmix64(rows * 131 + cols));
  const RealMatrix a = random_matrix(rows, cols, rng);
  const QrResult qr = qr_decompose(a);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-9);
  EXPECT_TRUE(has_orthonormal_columns(qr.q, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapes,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(2, 2),
                      std::make_pair<std::size_t, std::size_t>(10, 10),
                      std::make_pair<std::size_t, std::size_t>(20, 4),
                      std::make_pair<std::size_t, std::size_t>(4, 20),
                      std::make_pair<std::size_t, std::size_t>(100, 10),
                      std::make_pair<std::size_t, std::size_t>(33, 7)));

}  // namespace
}  // namespace qbarren
