// Tests for reduced density matrices and the Meyer-Wallach measure.
#include "qbarren/qsim/entanglement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-12;

TEST(ReducedDensity, ProductStateIsPure) {
  StateVector s(2);
  s.apply_single_qubit(gates::u3(0.7, 0.1, 0.4), 0);
  s.apply_single_qubit(gates::u3(1.9, -0.6, 0.2), 1);
  for (std::size_t q = 0; q < 2; ++q) {
    const ComplexMatrix rho = reduced_density_matrix_1q(s, q);
    // trace 1 and purity 1.
    EXPECT_NEAR((rho(0, 0) + rho(1, 1)).real(), 1.0, kTol);
    EXPECT_NEAR(single_qubit_purity(s, q), 1.0, kTol);
  }
}

TEST(ReducedDensity, BellStateIsMaximallyMixed) {
  StateVector bell(2);
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_controlled(gates::pauli_x(), 0, 1);
  for (std::size_t q = 0; q < 2; ++q) {
    const ComplexMatrix rho = reduced_density_matrix_1q(bell, q);
    EXPECT_NEAR(std::abs(rho(0, 0) - Complex{0.5, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(rho(1, 1) - Complex{0.5, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(rho(0, 1)), 0.0, kTol);
    EXPECT_NEAR(single_qubit_purity(bell, q), 0.5, kTol);
  }
}

TEST(ReducedDensity, KnownSuperposition) {
  // RY(theta)|0>: rho = [[cos^2(t/2), sin*cos], [sin*cos, sin^2(t/2)]].
  const double theta = 0.9;
  StateVector s(1);
  s.apply_single_qubit(gates::ry(theta), 0);
  const ComplexMatrix rho = reduced_density_matrix_1q(s, 0);
  const double c = std::cos(theta / 2.0);
  const double sn = std::sin(theta / 2.0);
  EXPECT_NEAR(rho(0, 0).real(), c * c, kTol);
  EXPECT_NEAR(rho(1, 1).real(), sn * sn, kTol);
  EXPECT_NEAR(rho(0, 1).real(), sn * c, kTol);
}

TEST(ReducedDensity, ValidatesQubit) {
  const StateVector s(2);
  EXPECT_THROW((void)reduced_density_matrix_1q(s, 2), InvalidArgument);
}

TEST(MeyerWallach, ZeroForProductStates) {
  StateVector s(3);
  s.apply_single_qubit(gates::u3(0.4, 0.2, 1.0), 0);
  s.apply_single_qubit(gates::hadamard(), 2);
  EXPECT_NEAR(meyer_wallach(s), 0.0, kTol);
}

TEST(MeyerWallach, OneForBellState) {
  StateVector bell(2);
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_controlled(gates::pauli_x(), 0, 1);
  EXPECT_NEAR(meyer_wallach(bell), 1.0, kTol);
}

TEST(MeyerWallach, GhzValue) {
  // GHZ_n: every single-qubit marginal is I/2 -> Q = 1.
  StateVector ghz(3);
  ghz.apply_single_qubit(gates::hadamard(), 0);
  ghz.apply_controlled(gates::pauli_x(), 0, 1);
  ghz.apply_controlled(gates::pauli_x(), 1, 2);
  EXPECT_NEAR(meyer_wallach(ghz), 1.0, kTol);
}

TEST(MeyerWallach, WStateValue) {
  // |W3> = (|001> + |010> + |100>)/sqrt(3): each marginal has purity
  // 1 - 2*(2/9) ... known Q(W_n) = 2 * (2/n)(1 - 1/n)... For n=3:
  // rho_q = diag(2/3, 1/3) -> purity 5/9 -> Q = 2(1 - 5/9) = 8/9.
  const double a = 1.0 / std::sqrt(3.0);
  StateVector w(3, {Complex{0, 0}, Complex{a, 0}, Complex{a, 0},
                    Complex{0, 0}, Complex{a, 0}, Complex{0, 0},
                    Complex{0, 0}, Complex{0, 0}});
  EXPECT_NEAR(meyer_wallach(w), 8.0 / 9.0, kTol);
}

TEST(MeyerWallach, BoundedOnRandomCircuits) {
  Rng rng(4);
  VarianceAnsatzOptions options;
  options.layers = 10;
  const Circuit c = variance_ansatz(4, rng, options);
  const auto init = make_initializer("random");
  Rng prng(5);
  const auto params = init->initialize(c, prng);
  const double q = meyer_wallach(c.simulate(params));
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0 + kTol);
  EXPECT_GT(q, 0.1);  // deep random circuits entangle heavily
}

TEST(MeyerWallach, NearIdentityInitializationStartsNearZero) {
  // The entanglement side of the initialization story: Xavier starts the
  // circuit near the (product) identity state.
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit c = training_ansatz(6, options);
  const auto xavier = make_initializer("xavier-normal");
  const auto small = make_initializer("small-normal");
  const auto random = make_initializer("random");
  Rng rng_a(6);
  Rng rng_b(6);
  Rng rng_c(6);
  const double q_xavier =
      meyer_wallach(c.simulate(xavier->initialize(c, rng_a)));
  const double q_small =
      meyer_wallach(c.simulate(small->initialize(c, rng_b)));
  const double q_random =
      meyer_wallach(c.simulate(random->initialize(c, rng_c)));
  EXPECT_LT(q_xavier, q_random);
  EXPECT_LT(q_small, 0.2 * q_random);
}

}  // namespace
}  // namespace qbarren
