// Tests for the optimizers: hand-computed single steps, convergence on a
// convex quadratic, reset semantics, and validation.
#include "qbarren/opt/optimizers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/error.hpp"

namespace qbarren {
namespace {

// Minimizes f(x) = 0.5 * ||x - target||^2 (gradient x - target).
std::vector<double> run_quadratic(Optimizer& opt, std::vector<double> x,
                                  const std::vector<double>& target,
                                  int steps) {
  opt.reset(x.size());
  std::vector<double> grad(x.size());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      grad[i] = x[i] - target[i];
    }
    opt.step(x, grad);
  }
  return x;
}

double distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

TEST(GradientDescentOpt, SingleStepIsExactlyLrTimesGrad) {
  GradientDescent opt(0.1);
  opt.reset(2);
  std::vector<double> params{1.0, -2.0};
  const std::vector<double> grad{0.5, 1.0};
  opt.step(params, grad);
  EXPECT_DOUBLE_EQ(params[0], 1.0 - 0.1 * 0.5);
  EXPECT_DOUBLE_EQ(params[1], -2.0 - 0.1 * 1.0);
}

TEST(GradientDescentOpt, ConvergesOnQuadratic) {
  GradientDescent opt(0.5);
  const std::vector<double> target{3.0, -1.0, 0.5};
  const auto x = run_quadratic(opt, {0.0, 0.0, 0.0}, target, 50);
  EXPECT_LT(distance(x, target), 1e-6);
}

TEST(AdamOpt, FirstStepHasMagnitudeLr) {
  // With bias correction, Adam's first update is lr * g / (|g| + eps').
  AdamOptimizer opt(0.1);
  opt.reset(2);
  std::vector<double> params{0.0, 0.0};
  const std::vector<double> grad{0.3, -400.0};
  opt.step(params, grad);
  EXPECT_NEAR(params[0], -0.1, 1e-6);
  EXPECT_NEAR(params[1], 0.1, 1e-6);
}

TEST(AdamOpt, ConvergesOnQuadratic) {
  AdamOptimizer opt(0.3);
  const std::vector<double> target{2.0, -5.0};
  const auto x = run_quadratic(opt, {0.0, 0.0}, target, 200);
  EXPECT_LT(distance(x, target), 1e-3);
}

TEST(MomentumOpt, AcceleratesRelativeToGd) {
  // On an ill-conditioned quadratic, momentum makes more progress than GD
  // in the same number of steps at the same learning rate.
  const std::vector<double> target{10.0};
  GradientDescent gd(0.05);
  MomentumOptimizer momentum(0.05, 0.9);
  const auto x_gd = run_quadratic(gd, {0.0}, target, 20);
  const auto x_m = run_quadratic(momentum, {0.0}, target, 20);
  EXPECT_LT(distance(x_m, target), distance(x_gd, target));
}

TEST(MomentumOpt, ConvergesOnQuadratic) {
  MomentumOptimizer opt(0.1, 0.8);
  const std::vector<double> target{1.0, 2.0};
  const auto x = run_quadratic(opt, {0.0, 0.0}, target, 150);
  EXPECT_LT(distance(x, target), 1e-5);
}

TEST(NesterovOpt, ConvergesOnQuadratic) {
  NesterovOptimizer opt(0.05, 0.9);
  const std::vector<double> target{-4.0};
  const auto x = run_quadratic(opt, {0.0}, target, 200);
  EXPECT_LT(distance(x, target), 1e-5);
}

TEST(RmsPropOpt, ConvergesOnQuadratic) {
  RmsPropOptimizer opt(0.05);
  const std::vector<double> target{1.5, -0.5};
  const auto x = run_quadratic(opt, {0.0, 0.0}, target, 400);
  EXPECT_LT(distance(x, target), 1e-2);
}

TEST(AmsGradOpt, ConvergesOnQuadratic) {
  AmsGradOptimizer opt(0.3);
  const std::vector<double> target{2.0, -3.0};
  const auto x = run_quadratic(opt, {0.0, 0.0}, target, 300);
  EXPECT_LT(distance(x, target), 1e-2);
}

TEST(Optimizers, ResetClearsState) {
  AdamOptimizer opt(0.1);
  opt.reset(1);
  std::vector<double> a{0.0};
  const std::vector<double> grad{1.0};
  opt.step(a, grad);
  const double first_update = a[0];

  opt.reset(1);
  std::vector<double> b{0.0};
  opt.step(b, grad);
  EXPECT_DOUBLE_EQ(b[0], first_update);
}

TEST(Optimizers, CloneIsFreshAndIndependent) {
  MomentumOptimizer opt(0.1, 0.9);
  opt.reset(1);
  std::vector<double> x{0.0};
  const std::vector<double> grad{1.0};
  opt.step(x, grad);  // builds velocity

  const auto clone = opt.clone();
  clone->reset(1);
  std::vector<double> y{0.0};
  clone->step(y, grad);
  // A fresh clone has zero velocity: first step identical to plain GD.
  EXPECT_DOUBLE_EQ(y[0], -0.1);
}

TEST(Optimizers, StatefulOptimizersRequireMatchingReset) {
  AdamOptimizer adam(0.1);
  adam.reset(2);
  std::vector<double> x{0.0};
  const std::vector<double> grad{1.0};
  EXPECT_THROW(adam.step(x, grad), InvalidArgument);
}

TEST(Optimizers, StepValidatesSizes) {
  GradientDescent gd(0.1);
  gd.reset(2);
  std::vector<double> x{0.0, 0.0};
  const std::vector<double> grad{1.0};
  EXPECT_THROW(gd.step(x, grad), InvalidArgument);
}

TEST(Optimizers, HyperparameterValidation) {
  EXPECT_THROW(GradientDescent(0.0), InvalidArgument);
  EXPECT_THROW(GradientDescent(-0.1), InvalidArgument);
  EXPECT_THROW(MomentumOptimizer(0.1, 1.0), InvalidArgument);
  EXPECT_THROW(NesterovOptimizer(0.1, -0.1), InvalidArgument);
  EXPECT_THROW(RmsPropOptimizer(0.1, 1.5), InvalidArgument);
  EXPECT_THROW(AdamOptimizer(0.1, 1.0), InvalidArgument);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 1.0), InvalidArgument);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 0.999, 0.0), InvalidArgument);
  EXPECT_THROW(AmsGradOptimizer(0.1, 0.9, 0.999, -1.0), InvalidArgument);
}

TEST(AdaGradOpt, ConvergesOnQuadratic) {
  AdaGradOptimizer opt(0.5);
  const std::vector<double> target{2.0, -1.0};
  const auto x = run_quadratic(opt, {0.0, 0.0}, target, 500);
  EXPECT_LT(distance(x, target), 0.05);
}

TEST(AdaGradOpt, StepSizeShrinksOverTime) {
  // Accumulated squared gradients monotonically shrink the effective step.
  AdaGradOptimizer opt(1.0);
  opt.reset(1);
  std::vector<double> x{0.0};
  const std::vector<double> grad{1.0};
  opt.step(x, grad);
  const double first = -x[0];
  const double before = x[0];
  opt.step(x, grad);
  const double second = before - x[0];
  EXPECT_LT(second, first);
}

TEST(AdadeltaOpt, ConvergesOnQuadratic) {
  AdadeltaOptimizer opt(0.9, 1e-4);
  const std::vector<double> target{1.0};
  const auto x = run_quadratic(opt, {0.0}, target, 3000);
  EXPECT_LT(distance(x, target), 0.05);
}

TEST(AdaGradAdadelta, Validation) {
  EXPECT_THROW(AdaGradOptimizer(0.0), InvalidArgument);
  EXPECT_THROW(AdaGradOptimizer(0.1, 0.0), InvalidArgument);
  EXPECT_THROW(AdadeltaOptimizer(1.0), InvalidArgument);
  EXPECT_THROW(AdadeltaOptimizer(0.9, 0.0), InvalidArgument);
}

TEST(Factory, KnownNamesAndAliases) {
  for (const char* name :
       {"gradient-descent", "gd", "momentum", "nesterov", "rmsprop", "adam",
        "amsgrad", "adagrad", "adadelta"}) {
    EXPECT_NE(make_optimizer(name, 0.1), nullptr) << name;
  }
  EXPECT_EQ(make_optimizer("gd", 0.1)->name(), "gradient-descent");
  EXPECT_THROW((void)make_optimizer("sgdw", 0.1), NotFound);
}

// Property sweep: every optimizer monotonically shrinks the distance to
// the optimum of a well-conditioned quadratic within its budget.
class AllOptimizersConverge : public ::testing::TestWithParam<const char*> {};

TEST_P(AllOptimizersConverge, ReachesNeighborhoodOfOptimum) {
  const auto opt = make_optimizer(GetParam(), 0.05);
  const std::vector<double> target{1.0, -2.0, 3.0};
  const auto x = run_quadratic(*opt, {0.0, 0.0, 0.0}, target, 500);
  EXPECT_LT(distance(x, target), 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Names, AllOptimizersConverge,
                         ::testing::Values("gradient-descent", "momentum",
                                           "nesterov", "rmsprop", "adam",
                                           "amsgrad"));

}  // namespace
}  // namespace qbarren
