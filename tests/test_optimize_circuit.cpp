// Tests for the peephole circuit optimizer.
#include "qbarren/circuit/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/pauli_rotation.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

void expect_equivalent(const Circuit& a, const Circuit& b,
                       const std::vector<double>& params) {
  const ComplexMatrix ua = a.unitary(params);
  const ComplexMatrix ub = b.unitary(params);
  EXPECT_LT(max_abs_diff(ua, ub), 1e-10);
}

TEST(OptimizeCircuit, DropsZeroAngleFixedRotations) {
  Circuit c(1);
  c.add_fixed_rotation(gates::Axis::kX, 0, 0.0);
  c.add_hadamard(0);
  c.add_fixed_rotation(gates::Axis::kZ, 0, 0.0);
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, &stats);
  EXPECT_EQ(opt.num_operations(), 1u);
  EXPECT_EQ(stats.removed_operations, 2u);
  expect_equivalent(c, opt, {});
}

TEST(OptimizeCircuit, FusesSameAxisFixedRotations) {
  Circuit c(1);
  c.add_fixed_rotation(gates::Axis::kY, 0, 0.3);
  c.add_fixed_rotation(gates::Axis::kY, 0, 0.4);
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, &stats);
  EXPECT_EQ(opt.num_operations(), 1u);
  EXPECT_EQ(stats.fused_rotations, 1u);
  EXPECT_DOUBLE_EQ(opt.operations()[0].fixed_angle, 0.7);
  expect_equivalent(c, opt, {});
}

TEST(OptimizeCircuit, FusionCancellationChains) {
  // RY(0.5) RY(-0.5) fuse to RY(0) which is then dropped.
  Circuit c(1);
  c.add_fixed_rotation(gates::Axis::kY, 0, 0.5);
  c.add_fixed_rotation(gates::Axis::kY, 0, -0.5);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 0u);
}

TEST(OptimizeCircuit, CancelsSelfInversePairs) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_hadamard(0);
  c.add_pauli_x(1);
  c.add_pauli_x(1);
  c.add_cz(0, 1);
  c.add_cz(1, 0);  // symmetric: still a cancelling pair
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, &stats);
  EXPECT_EQ(opt.num_operations(), 0u);
  EXPECT_EQ(stats.cancelled_pairs, 3u);
}

TEST(OptimizeCircuit, DoesNotCancelAcrossBlockingOps) {
  Circuit c(1);
  c.add_hadamard(0);
  c.add_t(0);  // blocks the H..H pair
  c.add_hadamard(0);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 3u);
}

TEST(OptimizeCircuit, DoesNotCancelCnotWithSwappedRoles) {
  Circuit c(2);
  c.add_cnot(0, 1);
  c.add_cnot(1, 0);  // different gate!
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 2u);
  expect_equivalent(c, opt, {});
}

TEST(OptimizeCircuit, TwoQubitPairBlockedByMiddleGate) {
  Circuit c(2);
  c.add_cz(0, 1);
  c.add_hadamard(0);  // touches qubit 0 between the CZs
  c.add_cz(0, 1);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 3u);
}

TEST(OptimizeCircuit, PreservesTrainableParameters) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_hadamard(0);
  (void)c.add_rotation(gates::Axis::kX, 0);
  c.add_fixed_rotation(gates::Axis::kZ, 1, 0.0);
  (void)c.add_rotation(gates::Axis::kY, 1);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_parameters(), 2u);
  EXPECT_EQ(opt.num_operations(), 2u);
  const std::vector<double> params{0.7, -0.2};
  expect_equivalent(c, opt, params);
}

TEST(OptimizeCircuit, NeverFusesTrainableRotations) {
  Circuit c(1);
  (void)c.add_rotation(gates::Axis::kX, 0);
  (void)c.add_rotation(gates::Axis::kX, 0);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_operations(), 2u);
  EXPECT_EQ(opt.num_parameters(), 2u);
}

TEST(OptimizeCircuit, ShrinksPauliRotationUncompute) {
  // Two consecutive identical ZZ rotations leave cancelling CNOT pairs at
  // the seam; the optimizer removes them.
  Circuit c(2);
  (void)add_pauli_rotation(c, "ZZ");
  (void)add_pauli_rotation(c, "ZZ");
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, &stats);
  EXPECT_LT(opt.num_operations(), c.num_operations());
  EXPECT_GE(stats.cancelled_pairs, 1u);
  const std::vector<double> params{0.3, 1.1};
  expect_equivalent(c, opt, params);
}

TEST(OptimizeCircuit, KeepsLayerShape) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(2, options);
  const Circuit opt = optimize_circuit(c);
  ASSERT_TRUE(opt.layer_shape().has_value());
  EXPECT_EQ(opt.layer_shape()->layers, 2u);
}

// Property: optimization preserves the unitary of random mixed circuits.
class OptimizeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeEquivalence, UnitaryPreserved) {
  Rng rng(GetParam());
  const std::size_t n = 3;
  Circuit c(n);
  std::vector<double> params;
  for (int step = 0; step < 40; ++step) {
    const std::size_t q = rng.index(n);
    switch (rng.index(6)) {
      case 0:
        c.add_hadamard(q);
        break;
      case 1:
        c.add_fixed_rotation(static_cast<gates::Axis>(rng.index(3)), q,
                             rng.bernoulli(0.3) ? 0.0
                                                : rng.uniform(-2.0, 2.0));
        break;
      case 2:
        (void)c.add_rotation(static_cast<gates::Axis>(rng.index(3)), q);
        params.push_back(rng.uniform(0.0, 6.0));
        break;
      case 3: {
        const std::size_t p = (q + 1) % n;
        c.add_cz(q, p);
        break;
      }
      case 4: {
        const std::size_t p = (q + 1) % n;
        c.add_cnot(q, p);
        break;
      }
      case 5:
        c.add_pauli_x(q);
        break;
    }
  }
  const Circuit opt = optimize_circuit(c);
  EXPECT_LE(opt.num_operations(), c.num_operations());
  EXPECT_EQ(opt.num_parameters(), c.num_parameters());
  const ComplexMatrix ua = c.unitary(params);
  const ComplexMatrix ub = opt.unitary(params);
  EXPECT_LT(max_abs_diff(ua, ub), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qbarren
