// Deliberately sloppy circuit: back-to-back same-axis rotations on q[0]
// (QB003) and a qubit no entangler touches (QB004, q[3]). Both findings
// are warnings, so `qbarren lint --qasm` still exits 0 — the CI lint job
// checks the warnings are reported without failing the build.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
rx(0.1) q[0];
rx(0.2) q[0];
ry(0.3) q[1];
ry(0.4) q[2];
rz(0.5) q[3];
cz q[0], q[1];
cz q[1], q[2];
