// Lint-clean hardware-efficient layer: alternating-axis rotations on every
// qubit followed by a full CZ ladder. `qbarren lint --qasm` must exit 0.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
rx(0.1) q[0];
ry(0.2) q[0];
rx(0.3) q[1];
ry(0.4) q[1];
rx(0.5) q[2];
ry(0.6) q[2];
rx(0.7) q[3];
ry(0.8) q[3];
cz q[0], q[1];
cz q[1], q[2];
cz q[2], q[3];
