// Tests for the expressibility / entanglement ensemble analysis.
#include "qbarren/bp/expressibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

ExpressibilityOptions small_options() {
  ExpressibilityOptions options;
  options.qubits = 3;
  options.layers = 3;
  options.pairs = 60;
  options.bins = 20;
  options.seed = 17;
  return options;
}

TEST(HaarMass, SumsToOneAndIsMonotone) {
  const std::size_t dim = 8;
  double total = 0.0;
  double previous = 1e9;
  const std::size_t bins = 10;
  for (std::size_t b = 0; b < bins; ++b) {
    const double lo = static_cast<double>(b) / bins;
    const double hi = static_cast<double>(b + 1) / bins;
    const double mass = haar_fidelity_mass(lo, hi, dim);
    EXPECT_GE(mass, 0.0);
    EXPECT_LE(mass, previous);  // density (N-1)(1-F)^{N-2} is decreasing
    previous = mass;
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HaarMass, Validation) {
  EXPECT_THROW((void)haar_fidelity_mass(0.2, 0.1, 4), InvalidArgument);
  EXPECT_THROW((void)haar_fidelity_mass(-0.1, 0.5, 4), InvalidArgument);
  EXPECT_THROW((void)haar_fidelity_mass(0.0, 1.0, 1), InvalidArgument);
}

TEST(Expressibility, ValidatesInputs) {
  const auto random = make_initializer("random");
  EXPECT_THROW((void)analyze_expressibility({}, small_options()),
               InvalidArgument);
  EXPECT_THROW((void)analyze_expressibility({nullptr}, small_options()),
               InvalidArgument);
  ExpressibilityOptions bad = small_options();
  bad.pairs = 5;
  EXPECT_THROW((void)analyze_expressibility({random.get()}, bad),
               InvalidArgument);
  bad = small_options();
  bad.bins = 1;
  EXPECT_THROW((void)analyze_expressibility({random.get()}, bad),
               InvalidArgument);
}

TEST(Expressibility, RandomEnsembleIsMoreHaarLikeThanNearIdentity) {
  // The core trade-off: random initialization explores the space
  // (Haar-like, low KL), near-identity strategies concentrate near one
  // state (high KL, high mean pairwise fidelity).
  const auto random = make_initializer("random");
  const auto small = make_initializer("small-normal");
  const auto results =
      analyze_expressibility({random.get(), small.get()}, small_options());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].kl_divergence, results[1].kl_divergence);
  EXPECT_LT(results[0].mean_fidelity, results[1].mean_fidelity);
  EXPECT_GT(results[1].mean_fidelity, 0.5);
}

TEST(Expressibility, EntanglementOrderingMatchesInitializationScale) {
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const auto results = analyze_expressibility({random.get(), xavier.get()},
                                              small_options());
  EXPECT_GT(results[0].mean_entanglement, results[1].mean_entanglement);
  for (const auto& r : results) {
    EXPECT_GE(r.mean_entanglement, 0.0);
    EXPECT_LE(r.mean_entanglement, 1.0);
  }
}

TEST(Expressibility, DeterministicGivenSeed) {
  const auto random = make_initializer("random");
  const auto a = analyze_expressibility({random.get()}, small_options());
  const auto b = analyze_expressibility({random.get()}, small_options());
  EXPECT_DOUBLE_EQ(a[0].kl_divergence, b[0].kl_divergence);
  EXPECT_DOUBLE_EQ(a[0].mean_fidelity, b[0].mean_fidelity);
}

TEST(Expressibility, RandomMeanFidelityNearHaarValue) {
  // Haar mean fidelity on an N-dimensional space is 1/N.
  ExpressibilityOptions options = small_options();
  options.pairs = 200;
  const auto random = make_initializer("random");
  const auto results = analyze_expressibility({random.get()}, options);
  EXPECT_NEAR(results[0].mean_fidelity, 1.0 / 8.0, 0.06);
}

TEST(Expressibility, TableShape) {
  const auto random = make_initializer("random");
  const auto results = analyze_expressibility({random.get()},
                                              small_options());
  const Table table = expressibility_table(results);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 5u);
  EXPECT_EQ(table.data()[0][0], "random");
}

TEST(FramePotential, HaarValues) {
  // F_1^Haar = 1/N, F_2^Haar = 2/(N(N+1)).
  EXPECT_NEAR(haar_frame_potential(1, 8), 1.0 / 8.0, 1e-15);
  EXPECT_NEAR(haar_frame_potential(2, 8), 2.0 / (8.0 * 9.0), 1e-15);
  EXPECT_NEAR(haar_frame_potential(2, 4), 0.1, 1e-15);
  EXPECT_THROW((void)haar_frame_potential(0, 8), InvalidArgument);
  EXPECT_THROW((void)haar_frame_potential(2, 1), InvalidArgument);
}

TEST(FramePotential, RandomEnsembleApproaches2Design) {
  // Deep random HEA ensembles approach a 2-design: ratio near 1. Near-
  // identity ensembles concentrate: ratio >> 1.
  ExpressibilityOptions options = small_options();
  options.pairs = 200;
  const auto random = make_initializer("random");
  const auto small = make_initializer("small-normal");
  const auto results =
      analyze_expressibility({random.get(), small.get()}, options);
  EXPECT_GT(results[0].frame_potential_ratio, 0.8);
  EXPECT_LT(results[0].frame_potential_ratio, 2.0);
  EXPECT_GT(results[1].frame_potential_ratio, 5.0);
  // F_2 >= F_1^2 (Jensen) and both are bounded by 1.
  for (const auto& r : results) {
    EXPECT_GE(r.frame_potential_2,
              r.mean_fidelity * r.mean_fidelity - 1e-12);
    EXPECT_LE(r.frame_potential_2, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace qbarren
