// Tests for the JSON builder and experiment-result serialization.
#include "qbarren/common/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "qbarren/bp/serialize.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue::null().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::integer(-42).dump(), "-42");
  EXPECT_EQ(JsonValue::number(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(
      JsonValue::number(std::numeric_limits<double>::quiet_NaN()).dump(),
      "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue::string("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::string("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue::string("a\nb\t").dump(), "\"a\\nb\\t\"");
  EXPECT_EQ(JsonValue::string(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::integer(1));
  arr.push_back(JsonValue::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");

  JsonValue obj = JsonValue::object();
  obj.set("b", 2.5);
  obj.set("a", std::int64_t{1});
  // std::map ordering -> keys sorted.
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2.5}");

  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(), "{}");
}

TEST(Json, NestedAndPrettyPrinted) {
  JsonValue obj = JsonValue::object();
  JsonValue inner = JsonValue::array();
  inner.push_back(JsonValue::integer(1));
  obj.set("xs", std::move(inner));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find("{\n  \"xs\": [\n    1\n  ]\n}"),
            std::string::npos);
}

TEST(Json, TypeMisuseThrows) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", 1.0), InvalidArgument);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.push_back(JsonValue::null()), InvalidArgument);
  JsonValue scalar = JsonValue::integer(1);
  EXPECT_THROW(scalar.push_back(JsonValue::null()), InvalidArgument);
}

TEST(Json, NumberArrayHelper) {
  const JsonValue arr = JsonValue::number_array({0.5, 1.5});
  EXPECT_EQ(arr.dump(), "[0.5,1.5]");
}

TEST(Json, WriteFileRoundTrip) {
  JsonValue obj = JsonValue::object();
  obj.set("k", std::int64_t{7});
  const std::string path = ::testing::TempDir() + "/qbarren_json_test.json";
  write_json_file(obj, path, 0);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"k\":7}\n");
  std::remove(path.c_str());
  EXPECT_THROW(write_json_file(obj, "/no-such-dir-zz/x.json"), Error);
}

TEST(Serialize, VarianceResultSchema) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 3};
  options.circuits_per_point = 6;
  options.layers = 5;
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get(), xavier.get()});

  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"schema\":\"qbarren.variance.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"initializer\":\"random\""), std::string::npos);
  EXPECT_NE(json.find("\"initializer\":\"xavier-normal\""),
            std::string::npos);
  EXPECT_NE(json.find("\"improvement_vs_random_percent\""),
            std::string::npos);
  EXPECT_NE(json.find("\"decay_fit\""), std::string::npos);
  EXPECT_NE(json.find("\"circuits_per_point\":6"), std::string::npos);
}

TEST(Serialize, VarianceImprovementIsNullOnDegenerateBaseline) {
  // A single qubit count leaves the random series without a usable decay
  // fit; the improvement field stays in the schema but carries null
  // instead of disappearing.
  VarianceExperimentOptions options;
  options.qubit_counts = {2};
  options.circuits_per_point = 6;
  options.layers = 5;
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get(), xavier.get()});
  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"improvement_vs_random_percent\":null"),
            std::string::npos);
}

TEST(Serialize, TrainingResultSchema) {
  TrainingExperimentOptions options;
  options.qubits = 2;
  options.layers = 1;
  options.iterations = 3;
  const auto xavier = make_initializer("xavier-normal");
  const TrainingResult result =
      TrainingExperiment(options).run({xavier.get()});
  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"schema\":\"qbarren.training.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"loss_history\":["), std::string::npos);
  EXPECT_NE(json.find("\"optimizer\":\"gradient-descent\""),
            std::string::npos);
}

TEST(Serialize, LandscapeResultSchema) {
  LandscapeOptions options;
  options.qubits = 2;
  options.layers = 3;
  options.grid_points = 4;
  const LandscapeResult result = scan_landscape(options);
  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"schema\":\"qbarren.landscape.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"values_row_major\":["), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"random_background\":true"), std::string::npos);
}

}  // namespace
}  // namespace qbarren
