// Tests for the compiled execution-plan layer: lowering stats, fusion,
// plan attachment/invalidation, and — most importantly — bit-identity of
// the compiled path against the interpreted path for simulate, unitary,
// all four gradient engines, and the noisy density-matrix simulator, on
// randomized circuits mixing every op kind.
#include "qbarren/exec/compiled_circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qbarren/common/rng.hpp"
#include "qbarren/dsim/noisy.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {
namespace {

// Random circuit mixing every op kind the builders expose. Interpreted
// references must be copied from the returned circuit BEFORE a plan is
// attached (copies share an already-attached plan).
Circuit random_circuit(Rng& rng, std::size_t qubits, std::size_t num_ops) {
  Circuit c(qubits);
  const auto axis = [&] {
    const std::size_t a = rng.index(3);
    return a == 0 ? gates::Axis::kX : a == 1 ? gates::Axis::kY : gates::Axis::kZ;
  };
  const auto pair = [&](std::size_t& a, std::size_t& b) {
    a = rng.index(qubits);
    b = rng.index(qubits - 1);
    if (b >= a) ++b;
  };
  for (std::size_t i = 0; i < num_ops; ++i) {
    const std::size_t q = rng.index(qubits);
    std::size_t a = 0;
    std::size_t b = 0;
    switch (rng.index(13)) {
      case 0:
        c.add_rotation(axis(), q);
        break;
      case 1:
        pair(a, b);
        c.add_controlled_rotation(axis(), a, b);
        break;
      case 2:
        c.add_fixed_rotation(axis(), q, rng.uniform(-M_PI, M_PI));
        break;
      case 3:
        c.add_hadamard(q);
        break;
      case 4:
        c.add_pauli_x(q);
        break;
      case 5:
        c.add_pauli_y(q);
        break;
      case 6:
        c.add_pauli_z(q);
        break;
      case 7:
        c.add_s(q);
        break;
      case 8:
        c.add_t(q);
        break;
      case 9:
        pair(a, b);
        c.add_cz(a, b);
        break;
      case 10:
        pair(a, b);
        c.add_cnot(a, b);
        break;
      case 11:
        pair(a, b);
        c.add_swap(a, b);
        break;
      case 12:
        if (rng.bernoulli(0.5)) {
          c.add_custom_gate("u3", gates::u3(rng.uniform(0.0, M_PI),
                                            rng.uniform(0.0, 2.0 * M_PI),
                                            rng.uniform(0.0, 2.0 * M_PI)),
                            q);
        } else {
          pair(a, b);
          c.add_custom_two_qubit_gate(
              "crz*swap", gates::crz(rng.uniform(-M_PI, M_PI)) * gates::swap(),
              std::min(a, b), std::max(a, b));
        }
        break;
    }
  }
  return c;
}

void expect_states_equal(const StateVector& got, const StateVector& want) {
  ASSERT_EQ(got.dimension(), want.dimension());
  for (std::size_t i = 0; i < got.dimension(); ++i) {
    EXPECT_EQ(got.amplitudes()[i].real(), want.amplitudes()[i].real()) << i;
    EXPECT_EQ(got.amplitudes()[i].imag(), want.amplitudes()[i].imag()) << i;
  }
}

TEST(CompiledCircuit, LoweringStatsAndFusion) {
  Circuit c(2);
  c.add_hadamard(0);
  c.add_pauli_x(0);  // fuses with the H: run of 2 on qubit 0
  c.add_rotation(gates::Axis::kY, 1);
  c.add_hadamard(1);
  c.add_s(1);
  c.add_t(1);  // run of 3 on qubit 1
  c.add_cz(0, 1);
  c.add_cnot(0, 1);
  c.add_swap(0, 1);

  const auto plan = exec::CompiledCircuit::compile(c);
  const auto& stats = plan->stats();
  EXPECT_EQ(stats.source_ops, 9u);
  EXPECT_EQ(stats.plan_ops, 6u);  // 2 fused runs + RY + CZ + CNOT + SWAP
  EXPECT_EQ(stats.fused_runs, 2u);
  EXPECT_EQ(stats.fused_source_ops, 5u);
  EXPECT_EQ(stats.rotation_ops, 1u);
  // 2x2 pool: H, X, S, T plus CNOT's X (interned under its own op kind);
  // 4x4 pool: SWAP.
  EXPECT_EQ(stats.cached_matrices, 6u);

  // Constant source ops expose their cached dense matrices.
  EXPECT_TRUE(plan->source_op_is_constant(0));
  EXPECT_FALSE(plan->source_op_is_constant(2));  // the RY
  const ComplexMatrix& h = plan->source_constant_matrix(0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t col = 0; col < 2; ++col) {
      EXPECT_EQ(h(r, col), gates::hadamard()(r, col));
    }
  }

  // Without fusion every source op lowers to its own kernel op.
  exec::CompileOptions no_fuse;
  no_fuse.fuse_single_qubit_runs = false;
  const auto flat = exec::CompiledCircuit::compile(c, no_fuse);
  EXPECT_EQ(flat->stats().fused_runs, 0u);
  EXPECT_EQ(flat->stats().plan_ops, 9u);

  // Fused and unfused programs agree exactly.
  Rng rng(7);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 2.0 * M_PI);
  expect_states_equal(plan->simulate(params), flat->simulate(params));
}

TEST(CompiledCircuit, PlanAttachShareAndInvalidate) {
  Circuit c(2);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_cnot(0, 1);
  EXPECT_EQ(c.execution_plan(), nullptr);

  const auto plan = exec::plan_for(c);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(c.execution_plan(), plan);
  EXPECT_EQ(exec::plan_for(c), plan);  // reuses the attached plan

  // Copies share the (immutable) plan.
  const Circuit copy = c;
  EXPECT_EQ(copy.execution_plan(), plan);

  // Mutation invalidates; the next plan_for lowers the new op list.
  c.add_hadamard(0);
  EXPECT_EQ(c.execution_plan(), nullptr);
  EXPECT_EQ(copy.execution_plan(), plan);  // the copy is untouched
  const auto replan = exec::plan_for(c);
  ASSERT_NE(replan, nullptr);
  EXPECT_NE(replan, plan);
  EXPECT_EQ(replan->stats().source_ops, 3u);
}

TEST(CompiledCircuit, ScopedToggleDisablesPlanFor) {
  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  ASSERT_TRUE(exec::execution_plans_enabled());
  {
    exec::ScopedExecutionPlans off(false);
    EXPECT_FALSE(exec::execution_plans_enabled());
    EXPECT_EQ(exec::plan_for(c), nullptr);
    EXPECT_EQ(c.execution_plan(), nullptr);  // nothing was attached
  }
  EXPECT_TRUE(exec::execution_plans_enabled());
  EXPECT_NE(exec::plan_for(c), nullptr);
}

TEST(CompiledCircuit, SimulateMatchesInterpretedOnRandomCircuits) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Circuit c = random_circuit(rng, 4, 40);
    const Circuit interpreted = c;  // copied before any plan is attached
    const auto params =
        rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);

    ASSERT_NE(exec::plan_for(c), nullptr);
    const StateVector compiled = c.simulate(params);
    const StateVector reference = interpreted.simulate(params);
    expect_states_equal(compiled, reference);
  }
}

TEST(CompiledCircuit, UnitaryMatchesInterpreted) {
  Rng rng(11);
  Circuit c = random_circuit(rng, 3, 25);
  const Circuit interpreted = c;
  const auto params = rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);

  ASSERT_NE(exec::plan_for(c), nullptr);
  const ComplexMatrix got = c.unitary(params);
  const ComplexMatrix want = interpreted.unitary(params);
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t col = 0; col < got.cols(); ++col) {
      EXPECT_EQ(got(r, col), want(r, col)) << r << "," << col;
    }
  }
}

TEST(CompiledCircuit, GradientEnginesMatchInterpretedExactly) {
  const ParameterShiftEngine ps;
  const FiniteDifferenceEngine fd;
  const AdjointEngine adj;
  const GlobalZeroObservable obs(4);

  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    Rng rng(seed);
    Circuit c = random_circuit(rng, 4, 35);
    const Circuit interpreted = c;
    const auto params =
        rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);

    ASSERT_NE(exec::plan_for(c), nullptr);
    for (const GradientEngine* engine :
         {static_cast<const GradientEngine*>(&ps),
          static_cast<const GradientEngine*>(&fd),
          static_cast<const GradientEngine*>(&adj)}) {
      const auto compiled = engine->gradient(c, obs, params);
      std::vector<double> reference;
      {
        exec::ScopedExecutionPlans off(false);
        reference = engine->gradient(interpreted, obs, params);
      }
      ASSERT_EQ(compiled.size(), reference.size());
      for (std::size_t i = 0; i < compiled.size(); ++i) {
        EXPECT_EQ(compiled[i], reference[i])
            << engine->name() << " param " << i << " seed " << seed;
      }
    }

    // value_and_gradient carries the same bit-identity guarantee.
    const ValueAndGradient compiled_vg = adj.value_and_gradient(c, obs, params);
    ValueAndGradient reference_vg;
    {
      exec::ScopedExecutionPlans off(false);
      reference_vg = adj.value_and_gradient(interpreted, obs, params);
    }
    EXPECT_EQ(compiled_vg.value, reference_vg.value);
    for (std::size_t i = 0; i < compiled_vg.gradient.size(); ++i) {
      EXPECT_EQ(compiled_vg.gradient[i], reference_vg.gradient[i]) << i;
    }
  }
}

TEST(CompiledCircuit, SpsaSameSeedMatchesInterpreted) {
  Rng rng(31);
  Circuit c = random_circuit(rng, 4, 30);
  const Circuit interpreted = c;
  const auto params = rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);
  const GlobalZeroObservable obs(4);

  ASSERT_NE(exec::plan_for(c), nullptr);
  const SpsaEngine compiled_engine(123);
  const auto compiled = compiled_engine.gradient(c, obs, params);
  std::vector<double> reference;
  {
    exec::ScopedExecutionPlans off(false);
    const SpsaEngine interpreted_engine(123);
    reference = interpreted_engine.gradient(interpreted, obs, params);
  }
  ASSERT_EQ(compiled.size(), reference.size());
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    EXPECT_EQ(compiled[i], reference[i]) << i;
  }
}

TEST(CompiledCircuit, PrefixReusePartialsCrossCheck) {
  // partial() takes the prefix-reuse path; gradient() loops partial. Both
  // must agree with each other and with the interpreted partial — exactly,
  // including the controlled-rotation four-term rule.
  Circuit c(3);
  c.add_hadamard(0);
  c.add_rotation(gates::Axis::kY, 0);
  c.add_controlled_rotation(gates::Axis::kZ, 0, 1);
  c.add_cnot(1, 2);
  c.add_rotation(gates::Axis::kX, 2);
  c.add_rotation(gates::Axis::kZ, 1);
  const Circuit interpreted = c;

  Rng rng(5);
  const auto params = rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);
  const GlobalZeroObservable obs(3);
  const ParameterShiftEngine ps;
  const FiniteDifferenceEngine fd;

  ASSERT_NE(exec::plan_for(c), nullptr);
  const auto grad = ps.gradient(c, obs, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(ps.partial(c, obs, params, i), grad[i]) << i;
    EXPECT_EQ(fd.partial(c, obs, params, i),
              [&] {
                exec::ScopedExecutionPlans off(false);
                return fd.partial(interpreted, obs, params, i);
              }())
        << i;
    {
      exec::ScopedExecutionPlans off(false);
      EXPECT_EQ(ps.partial(interpreted, obs, params, i), grad[i]) << i;
    }
  }
}

TEST(CompiledCircuit, OperationForParameterTableMatchesScan) {
  Rng rng(41);
  Circuit c = random_circuit(rng, 4, 50);
  const Circuit scan = c;  // no plan: linear-scan path
  ASSERT_NE(exec::plan_for(c), nullptr);

  for (std::size_t p = 0; p < c.num_parameters(); ++p) {
    const Operation& via_table = c.operation_for_parameter(p);
    const Operation& via_scan = scan.operation_for_parameter(p);
    // Same position in the op list, not merely equal fields.
    EXPECT_EQ(&via_table - c.operations().data(),
              &via_scan - scan.operations().data())
        << p;
    EXPECT_EQ(via_table.param_index, p);
  }
}

TEST(CompiledCircuit, MalformedCustomGateFallsBackToInterpreted) {
  Circuit c(2);
  c.add_rotation(gates::Axis::kY, 0);
  c.add_custom_gate("bad-dims", ComplexMatrix(3, 3), 1);

  // Lowering fails, so plan_for declines to attach anything...
  EXPECT_EQ(exec::plan_for(c), nullptr);
  EXPECT_EQ(c.execution_plan(), nullptr);
  // ...and execution still reports the malformed gate the usual way.
  EXPECT_THROW((void)c.simulate(std::vector<double>{0.3}), InvalidArgument);
}

TEST(CompiledCircuit, NoisySimulatorMatchesInterpreted) {
  Rng rng(51);
  Circuit c = random_circuit(rng, 3, 20);
  const Circuit interpreted = c;
  const auto params = rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);
  const GlobalZeroObservable obs(3);
  const NoiseModel noise = make_depolarizing_model(0.01, 0.02);

  ASSERT_NE(exec::plan_for(c), nullptr);
  const double compiled = noisy_expectation(c, params, obs, noise);
  double reference = 0.0;
  {
    exec::ScopedExecutionPlans off(false);
    reference = noisy_expectation(interpreted, params, obs, noise);
  }
  EXPECT_EQ(compiled, reference);
}

TEST(CompiledCircuit, PartialEvaluatorMatchesFullSimulation) {
  Rng rng(61);
  Circuit c = random_circuit(rng, 3, 25);
  const auto params = rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);
  const GlobalZeroObservable obs(3);
  const auto plan = exec::plan_for(c);
  ASSERT_NE(plan, nullptr);

  for (std::size_t i = 0; i < c.num_parameters(); ++i) {
    exec::PartialEvaluator cost(plan, obs, params, i);
    // delta = 0 reproduces the unshifted cost bit-for-bit.
    EXPECT_EQ(cost(0.0), obs.expectation(plan->simulate(params))) << i;
  }
}

}  // namespace
}  // namespace qbarren
