// Tests for the hardware-efficient ansatz builders, including the paper's
// quoted structural counts (145 gates / 100 parameters at n=10, L=5).
#include "qbarren/circuit/ansatz.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qbarren {
namespace {

TEST(TrainingAnsatz, PaperGateAndParameterCounts) {
  // Paper §IV-D: n = 10, L = 5 gives 145 gates and 100 parameters
  // (per layer: 10 RX + 10 RY + 9 CZ = 29; 29 * 5 = 145).
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit c = training_ansatz(10, options);
  EXPECT_EQ(c.num_operations(), 145u);
  EXPECT_EQ(c.num_parameters(), 100u);
  EXPECT_EQ(c.two_qubit_gate_count(), 45u);
}

TEST(TrainingAnsatz, LayerShapeRecorded) {
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit c = training_ansatz(10, options);
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->layers, 5u);
  EXPECT_EQ(c.layer_shape()->params_per_layer, 20u);
}

TEST(TrainingAnsatz, StructureIsRxRyPerQubitThenLadder) {
  TrainingAnsatzOptions options;
  options.layers = 1;
  const Circuit c = training_ansatz(3, options);
  const auto& ops = c.operations();
  ASSERT_EQ(ops.size(), 8u);  // 3 * (RX, RY) + 2 CZ
  EXPECT_EQ(ops[0].kind, OpKind::kRotation);
  EXPECT_EQ(ops[0].axis, gates::Axis::kX);
  EXPECT_EQ(ops[0].qubit0, 0u);
  EXPECT_EQ(ops[1].axis, gates::Axis::kY);
  EXPECT_EQ(ops[1].qubit0, 0u);
  EXPECT_EQ(ops[6].kind, OpKind::kCz);
  EXPECT_EQ(ops[6].qubit0, 0u);
  EXPECT_EQ(ops[6].qubit1, 1u);
  EXPECT_EQ(ops[7].qubit0, 1u);
  EXPECT_EQ(ops[7].qubit1, 2u);
}

TEST(TrainingAnsatz, SingleQubitHasNoEntanglers) {
  TrainingAnsatzOptions options;
  options.layers = 4;
  const Circuit c = training_ansatz(1, options);
  EXPECT_EQ(c.two_qubit_gate_count(), 0u);
  EXPECT_EQ(c.num_parameters(), 8u);
}

TEST(TrainingAnsatz, EntangleOff) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  options.entangle = false;
  const Circuit c = training_ansatz(4, options);
  EXPECT_EQ(c.two_qubit_gate_count(), 0u);
  EXPECT_EQ(c.num_parameters(), 16u);
}

TEST(TrainingAnsatz, RejectsZeroLayers) {
  TrainingAnsatzOptions options;
  options.layers = 0;
  EXPECT_THROW((void)training_ansatz(2, options), InvalidArgument);
}

TEST(VarianceAnsatz, CountsAndShape) {
  Rng rng(1);
  VarianceAnsatzOptions options;
  options.layers = 7;
  const Circuit c = variance_ansatz(5, rng, options);
  // Per layer: 5 rotations + 4 CZ.
  EXPECT_EQ(c.num_operations(), 7u * 9u);
  EXPECT_EQ(c.num_parameters(), 35u);
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->layers, 7u);
  EXPECT_EQ(c.layer_shape()->params_per_layer, 5u);
}

TEST(VarianceAnsatz, AxesAreRandomizedAcrossSeeds) {
  VarianceAnsatzOptions options;
  options.layers = 10;
  Rng rng_a(1);
  Rng rng_b(2);
  const Circuit a = variance_ansatz(4, rng_a, options);
  const Circuit b = variance_ansatz(4, rng_b, options);
  bool any_axis_differs = false;
  for (std::size_t i = 0; i < a.num_operations(); ++i) {
    if (a.operations()[i].kind == OpKind::kRotation &&
        a.operations()[i].axis != b.operations()[i].axis) {
      any_axis_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_axis_differs);
}

TEST(VarianceAnsatz, UsesAllThreeAxesEventually) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 30;
  const Circuit c = variance_ansatz(3, rng, options);
  std::set<gates::Axis> seen;
  for (const Operation& op : c.operations()) {
    if (op.kind == OpKind::kRotation) {
      seen.insert(op.axis);
    }
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(VarianceAnsatz, DeterministicGivenSeed) {
  VarianceAnsatzOptions options;
  options.layers = 12;
  Rng a(9);
  Rng b(9);
  const Circuit ca = variance_ansatz(4, a, options);
  const Circuit cb = variance_ansatz(4, b, options);
  ASSERT_EQ(ca.num_operations(), cb.num_operations());
  for (std::size_t i = 0; i < ca.num_operations(); ++i) {
    EXPECT_EQ(ca.operations()[i].kind, cb.operations()[i].kind);
    EXPECT_EQ(ca.operations()[i].axis, cb.operations()[i].axis);
  }
}

TEST(MotivationalAnsatz, MatchesTrainingStructureAtDepth100) {
  const Circuit c = motivational_ansatz(2, 100);
  // Fig 1 setup: RX+RY per qubit per layer + CZ: 2 qubits -> 5 ops/layer.
  EXPECT_EQ(c.num_operations(), 500u);
  EXPECT_EQ(c.num_parameters(), 400u);
}

TEST(HardwareEfficientAnsatz, CustomAxesSequence) {
  const std::vector<gates::Axis> axes{gates::Axis::kZ, gates::Axis::kX,
                                      gates::Axis::kZ};
  const Circuit c = hardware_efficient_ansatz(2, 2, axes);
  // Per layer: 2 qubits * 3 rotations + 1 CZ = 7 ops.
  EXPECT_EQ(c.num_operations(), 14u);
  EXPECT_EQ(c.num_parameters(), 12u);
  EXPECT_EQ(c.operations()[0].axis, gates::Axis::kZ);
  EXPECT_EQ(c.operations()[1].axis, gates::Axis::kX);
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->params_per_layer, 6u);
}

TEST(HardwareEfficientAnsatz, RejectsEmptyAxes) {
  EXPECT_THROW((void)hardware_efficient_ansatz(2, 1, {}), InvalidArgument);
}

TEST(CzLadder, ConnectsNeighbors) {
  Circuit c(4);
  add_cz_ladder(c);
  ASSERT_EQ(c.num_operations(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.operations()[i].kind, OpKind::kCz);
    EXPECT_EQ(c.operations()[i].qubit0, i);
    EXPECT_EQ(c.operations()[i].qubit1, i + 1);
  }
}

TEST(CzLadder, NoOpOnSingleQubit) {
  Circuit c(1);
  add_cz_ladder(c);
  EXPECT_EQ(c.num_operations(), 0u);
}

}  // namespace
}  // namespace qbarren
