// Tests for the Fubini-Study metric and quantum natural gradient training.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/grad/metric.hpp"
#include "qbarren/linalg/checks.hpp"
#include "qbarren/linalg/solve.hpp"
#include "qbarren/opt/natural_gradient.hpp"

namespace qbarren {
namespace {

TEST(DerivativeStates, MatchFiniteDifferencesOfTheState) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(2, options);
  Rng rng(1);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 2.0);

  const auto derivatives = derivative_states(c, params);
  ASSERT_EQ(derivatives.size(), c.num_parameters());

  const double h = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 3) {
    std::vector<double> shifted(params);
    shifted[i] += h;
    const StateVector plus = c.simulate(shifted);
    shifted[i] = params[i] - h;
    const StateVector minus = c.simulate(shifted);
    for (std::size_t k = 0; k < plus.dimension(); ++k) {
      const Complex fd =
          (plus.amplitude(k) - minus.amplitude(k)) / (2.0 * h);
      EXPECT_NEAR(std::abs(derivatives[i].amplitude(k) - fd), 0.0, 1e-6)
          << "param " << i << " amp " << k;
    }
  }
}

TEST(Metric, SingleRyIsQuarter) {
  // For |psi> = RY(theta)|0>, the Fubini-Study metric is 1/4 at any angle.
  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  for (const double theta : {0.0, 0.7, M_PI / 2.0, 2.5}) {
    const RealMatrix f =
        fubini_study_metric(c, std::vector<double>{theta});
    ASSERT_EQ(f.rows(), 1u);
    EXPECT_NEAR(f(0, 0), 0.25, 1e-11) << theta;
  }
}

TEST(Metric, TwoIndependentQubitsIsDiagonalQuarter) {
  // RY on each of two qubits, no entangler: parameters act on orthogonal
  // factors, so F = diag(1/4, 1/4) for generic angles... the off-diagonal
  // term <d0|d1> - <d0|psi><psi|d1> vanishes because the Berry connection
  // exactly cancels the product term for real RY states.
  Circuit c(2);
  c.add_rotation(gates::Axis::kY, 0);
  c.add_rotation(gates::Axis::kY, 1);
  const std::vector<double> params{0.8, 1.7};
  const RealMatrix f = fubini_study_metric(c, params);
  EXPECT_NEAR(f(0, 0), 0.25, 1e-11);
  EXPECT_NEAR(f(1, 1), 0.25, 1e-11);
  EXPECT_NEAR(f(0, 1), 0.0, 1e-11);
  EXPECT_NEAR(f(1, 0), 0.0, 1e-11);
}

TEST(Metric, SequentialRzRyOnOneQubitKnownValue) {
  // |psi> = RY(b) RZ(a) |0>: standard QNG example. The metric's diagonal
  // entries are Var of the generators: F_aa = 1/4 (1 - <Z>^2) with <Z> on
  // |0> = 1 -> F_aa = 0; F_bb = 1/4.
  Circuit c(1);
  c.add_rotation(gates::Axis::kZ, 0);
  c.add_rotation(gates::Axis::kY, 0);
  const RealMatrix f =
      fubini_study_metric(c, std::vector<double>{0.3, 1.1});
  EXPECT_NEAR(f(0, 0), 0.0, 1e-11);   // RZ acts trivially on |0>
  EXPECT_NEAR(f(1, 1), 0.25, 1e-11);
}

TEST(Metric, SymmetricPositiveSemidefinite) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  Rng rng(5);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  const RealMatrix f = fubini_study_metric(c, params);

  EXPECT_LT(max_abs_diff(f, f.transpose()), 1e-11);
  // PSD check: Cholesky of F + tiny ridge succeeds.
  RealMatrix ridged = f;
  for (std::size_t i = 0; i < ridged.rows(); ++i) {
    ridged(i, i) += 1e-9;
  }
  EXPECT_NO_THROW((void)cholesky(ridged));
}

TEST(Metric, ValidatesArguments) {
  const Circuit no_params(1);
  EXPECT_THROW((void)fubini_study_metric(no_params, {}), InvalidArgument);

  Circuit c(1);
  c.add_rotation(gates::Axis::kY, 0);
  EXPECT_THROW((void)derivative_states(c, std::vector<double>{1.0, 2.0}),
               InvalidArgument);
}

TEST(Qng, ConvergesOnIdentityTask) {
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = 2;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(3, ansatz_options));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;

  NaturalGradientOptions options;
  options.max_iterations = 30;
  options.learning_rate = 0.2;
  const std::vector<double> init(cost.num_parameters(), 0.4);
  const TrainResult result =
      train_natural_gradient(cost, engine, init, options);
  EXPECT_LT(result.final_loss, 0.01);
  EXPECT_EQ(result.loss_history.size(), 31u);
  EXPECT_EQ(result.gradient_norm_history.size(), 30u);
}

TEST(Qng, BeatsVanillaGdPerIteration) {
  // QNG rescales flat directions, converging in fewer iterations than GD
  // at the same learning rate on the identity task.
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = 2;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(4, ansatz_options));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;
  const std::vector<double> init(cost.num_parameters(), 0.35);

  NaturalGradientOptions qng_options;
  qng_options.max_iterations = 15;
  qng_options.learning_rate = 0.1;
  const TrainResult qng =
      train_natural_gradient(cost, engine, init, qng_options);

  GradientDescent gd(0.1);
  TrainOptions gd_options;
  gd_options.max_iterations = 15;
  const TrainResult vanilla = train(cost, engine, gd, init, gd_options);

  EXPECT_LT(qng.final_loss, vanilla.final_loss);
}

TEST(Qng, ValidatesOptions) {
  Circuit raw(1);
  raw.add_rotation(gates::Axis::kY, 0);
  auto circuit = std::make_shared<const Circuit>(std::move(raw));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;

  EXPECT_THROW((void)train_natural_gradient(cost, engine, {1.0, 2.0}),
               InvalidArgument);
  NaturalGradientOptions bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW((void)train_natural_gradient(cost, engine, {1.0}, bad),
               InvalidArgument);
  bad = NaturalGradientOptions{};
  bad.lambda = -1.0;
  EXPECT_THROW((void)train_natural_gradient(cost, engine, {1.0}, bad),
               InvalidArgument);
}

}  // namespace
}  // namespace qbarren
