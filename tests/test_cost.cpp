// Tests for CostFunction and the cost-kind factory.
#include "qbarren/obs/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"

namespace qbarren {
namespace {

constexpr double kTol = 1e-12;

std::shared_ptr<const Circuit> one_qubit_ry() {
  auto c = std::make_shared<Circuit>(1);
  c->add_rotation(gates::Axis::kY, 0);
  return c;
}

TEST(CostFunction, RejectsNullAndMismatch) {
  auto circuit = one_qubit_ry();
  auto obs2 = std::make_shared<GlobalZeroObservable>(2);
  EXPECT_THROW(CostFunction(nullptr, obs2), InvalidArgument);
  EXPECT_THROW(CostFunction(circuit, nullptr), InvalidArgument);
  EXPECT_THROW(CostFunction(circuit, obs2), InvalidArgument);
}

TEST(CostFunction, IdentityCostAnalytic) {
  // C(theta) = 1 - cos^2(theta/2) = sin^2(theta/2) for RY on |0>.
  const CostFunction cost = make_identity_cost(one_qubit_ry());
  for (double theta : {0.0, 0.5, M_PI / 2.0, M_PI, 2.2}) {
    const double expected = std::sin(theta / 2.0) * std::sin(theta / 2.0);
    EXPECT_NEAR(cost.value(std::vector<double>{theta}), expected, kTol);
  }
}

TEST(CostFunction, ZeroParametersGiveZeroIdentityCost) {
  TrainingAnsatzOptions options;
  options.layers = 3;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(4, options));
  const CostFunction cost = make_identity_cost(circuit);
  const std::vector<double> zeros(circuit->num_parameters(), 0.0);
  // All rotations at angle 0 + CZ on |0...0> leave the state at |0...0>.
  EXPECT_NEAR(cost.value(zeros), 0.0, kTol);
}

TEST(CostFunction, LocalIdentityCostZeroAtZero) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(3, options));
  const CostFunction cost = make_local_identity_cost(circuit);
  const std::vector<double> zeros(circuit->num_parameters(), 0.0);
  EXPECT_NEAR(cost.value(zeros), 0.0, kTol);
}

TEST(CostFunction, AccessorsWiredThrough) {
  auto circuit = one_qubit_ry();
  const CostFunction cost = make_identity_cost(circuit);
  EXPECT_EQ(cost.num_parameters(), 1u);
  EXPECT_EQ(&cost.circuit(), circuit.get());
  EXPECT_EQ(cost.observable().name(), "global-zero");
  EXPECT_EQ(cost.circuit_ptr(), circuit);
  EXPECT_NE(cost.observable_ptr(), nullptr);
}

TEST(CostFunction, ValueValidatesParamCount) {
  const CostFunction cost = make_identity_cost(one_qubit_ry());
  EXPECT_THROW((void)cost.value(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW((void)cost.value(std::vector<double>{1.0, 2.0}),
               InvalidArgument);
}

TEST(CostKind, FactoryProducesRightObservables) {
  EXPECT_EQ(make_cost_observable(CostKind::kGlobalZero, 3)->name(),
            "global-zero");
  EXPECT_EQ(make_cost_observable(CostKind::kLocalZero, 3)->name(),
            "local-zero");
  EXPECT_EQ(make_cost_observable(CostKind::kPauliZZ, 3)->name(), "pauli:ZZI");
  EXPECT_THROW((void)make_cost_observable(CostKind::kPauliZZ, 1),
               InvalidArgument);
}

TEST(CostKind, NamesRoundTrip) {
  for (const CostKind kind :
       {CostKind::kGlobalZero, CostKind::kLocalZero, CostKind::kPauliZZ}) {
    EXPECT_EQ(cost_kind_from_name(cost_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)cost_kind_from_name("bogus"), NotFound);
}

}  // namespace
}  // namespace qbarren
