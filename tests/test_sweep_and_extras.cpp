// Tests for the multi-seed training sweep, entangler options, XXZ
// Hamiltonian factory, and the higher-moment statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/hamiltonian.hpp"

namespace qbarren {
namespace {

// --- training sweep ---------------------------------------------------------

TEST(TrainingSweep, ValidatesOptions) {
  const auto xavier = make_initializer("xavier-normal");
  TrainingSweepOptions options;
  options.repetitions = 1;
  EXPECT_THROW((void)run_training_sweep({xavier.get()}, options),
               InvalidArgument);
  options.repetitions = 2;
  EXPECT_THROW((void)run_training_sweep({}, options), InvalidArgument);
}

TEST(TrainingSweep, ShapesAndDeterminism) {
  const auto xavier = make_initializer("xavier-normal");
  TrainingSweepOptions options;
  options.base.qubits = 3;
  options.base.layers = 2;
  options.base.iterations = 5;
  options.repetitions = 3;
  const TrainingSweepResult a =
      run_training_sweep({xavier.get()}, options);
  ASSERT_EQ(a.series.size(), 1u);
  EXPECT_EQ(a.series[0].final_losses.size(), 3u);
  EXPECT_EQ(a.series[0].final_loss_summary.count, 3u);

  const TrainingSweepResult b =
      run_training_sweep({xavier.get()}, options);
  EXPECT_EQ(a.series[0].final_losses, b.series[0].final_losses);
}

TEST(TrainingSweep, SeedsActuallyDiffer) {
  const auto xavier = make_initializer("xavier-normal");
  TrainingSweepOptions options;
  options.base.qubits = 3;
  options.base.layers = 2;
  options.base.iterations = 5;
  options.repetitions = 3;
  const TrainingSweepResult result =
      run_training_sweep({xavier.get()}, options);
  const auto& losses = result.series[0].final_losses;
  EXPECT_NE(losses[0], losses[1]);
  EXPECT_NE(losses[1], losses[2]);
}

TEST(TrainingSweep, XavierRobustlyBeatsRandomAcrossSeeds) {
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  TrainingSweepOptions options;
  options.base.qubits = 6;
  options.base.layers = 3;
  options.base.iterations = 25;
  options.repetitions = 3;
  const TrainingSweepResult result =
      run_training_sweep({random.get(), xavier.get()}, options);
  // Every xavier seed ends below every random seed (GD on the plateau).
  EXPECT_LT(result.series[1].final_loss_summary.max,
            result.series[0].final_loss_summary.min);
}

TEST(TrainingSweep, SummaryTableShape) {
  const auto xavier = make_initializer("xavier-normal");
  TrainingSweepOptions options;
  options.base.qubits = 2;
  options.base.layers = 1;
  options.base.iterations = 2;
  options.repetitions = 2;
  const TrainingSweepResult result =
      run_training_sweep({xavier.get()}, options);
  const Table table = result.summary_table();
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 6u);
}

// --- entangler options --------------------------------------------------------

TEST(Entangler, TopologiesProduceExpectedPairCounts) {
  for (const auto gate : {EntanglerGate::kCz, EntanglerGate::kCnot}) {
    Circuit linear(5);
    add_entangling_layer(linear, gate, EntanglerTopology::kLinear);
    EXPECT_EQ(linear.two_qubit_gate_count(), 4u);

    Circuit ring(5);
    add_entangling_layer(ring, gate, EntanglerTopology::kRing);
    EXPECT_EQ(ring.two_qubit_gate_count(), 5u);

    Circuit all(5);
    add_entangling_layer(all, gate, EntanglerTopology::kAllToAll);
    EXPECT_EQ(all.two_qubit_gate_count(), 10u);
  }
}

TEST(Entangler, RingOnTwoQubitsHasNoDuplicatePair) {
  Circuit ring(2);
  add_entangling_layer(ring, EntanglerGate::kCz, EntanglerTopology::kRing);
  EXPECT_EQ(ring.two_qubit_gate_count(), 1u);
}

TEST(Entangler, CnotAnsatzBuildsAndSimulates) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  options.entangler = EntanglerGate::kCnot;
  options.topology = EntanglerTopology::kRing;
  const Circuit c = training_ansatz(3, options);
  const std::vector<double> params(c.num_parameters(), 0.2);
  EXPECT_NEAR(c.simulate(params).norm_squared(), 1.0, 1e-12);
  for (const Operation& op : c.operations()) {
    EXPECT_NE(op.kind, OpKind::kCz);
  }
}

TEST(Entangler, VarianceExperimentHonorsTopology) {
  VarianceExperimentOptions options;
  options.qubit_counts = {3};
  options.circuits_per_point = 6;
  options.layers = 4;
  const auto random = make_initializer("random");

  options.topology = EntanglerTopology::kLinear;
  const VarianceResult linear =
      VarianceExperiment(options).run({random.get()});
  options.topology = EntanglerTopology::kAllToAll;
  const VarianceResult all =
      VarianceExperiment(options).run({random.get()});
  EXPECT_NE(linear.series[0].points[0].variance,
            all.series[0].points[0].variance);
}

// --- XXZ Hamiltonian ----------------------------------------------------------

TEST(Xxz, TermStructure) {
  const PauliSumObservable h = heisenberg_xxz(3, 1.0, 0.5, 0.25);
  // 2 bonds * 3 terms + 3 fields.
  EXPECT_EQ(h.terms().size(), 9u);
  EXPECT_EQ(h.terms()[0].paulis, "XXI");
  EXPECT_EQ(h.terms()[1].paulis, "YYI");
  EXPECT_EQ(h.terms()[2].paulis, "ZZI");
  EXPECT_DOUBLE_EQ(h.terms()[2].coefficient, 0.5);
  EXPECT_EQ(h.terms()[6].paulis, "ZII");
}

TEST(Xxz, NoFieldOmitsZTerms) {
  const PauliSumObservable h = heisenberg_xxz(3, 1.0, 1.0);
  EXPECT_EQ(h.terms().size(), 6u);
  EXPECT_THROW((void)heisenberg_xxz(1, 1.0, 1.0), InvalidArgument);
}

TEST(Xxz, TwoSiteGroundEnergyKnown) {
  // H = XX + YY + Delta ZZ on 2 sites: singlet energy -2 - Delta... the
  // spectrum is {Delta, Delta, -Delta + 2, -Delta - 2} for Jxy = 1:
  // ground energy = -Delta - 2 when Delta > -... at Delta = 0.5: -2.5.
  const PauliSumObservable h = heisenberg_xxz(2, 1.0, 0.5);
  EXPECT_NEAR(ground_state_energy(h), -2.5, 1e-8);
}

// --- higher moments ------------------------------------------------------------

TEST(HigherMoments, GaussianIsMesokurtic) {
  Rng rng(3);
  const auto xs = rng.normal_vector(40000);
  EXPECT_NEAR(sample_excess_kurtosis(xs), 0.0, 0.1);
  EXPECT_NEAR(sample_skewness(xs), 0.0, 0.05);
}

TEST(HigherMoments, UniformIsPlatykurtic) {
  Rng rng(5);
  const auto xs = rng.uniform_vector(40000, -1.0, 1.0);
  EXPECT_NEAR(sample_excess_kurtosis(xs), -1.2, 0.05);
}

TEST(HigherMoments, SkewedSampleDetected) {
  // Squares of Gaussians (chi^2_1) are strongly right-skewed.
  Rng rng(7);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    const double g = rng.normal();
    x = g * g;
  }
  EXPECT_GT(sample_skewness(xs), 1.5);
  EXPECT_GT(sample_excess_kurtosis(xs), 3.0);
}

TEST(HigherMoments, Validation) {
  const std::vector<double> constant{1.0, 1.0};
  EXPECT_THROW((void)sample_skewness(constant), NumericalError);
  EXPECT_THROW((void)sample_excess_kurtosis(constant), NumericalError);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)sample_skewness(one), InvalidArgument);
}

TEST(HigherMoments, PlateauGradientsAreLeptokurtic) {
  // Gradient samples on a plateau concentrate at 0 with rare outliers —
  // positive excess kurtosis; a direct statistical signature of BP.
  VarianceExperimentOptions options;
  options.qubit_counts = {6};
  options.circuits_per_point = 60;
  options.layers = 25;
  const auto random = make_initializer("random");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get()});
  // Re-derive the raw samples' kurtosis via the summary? The experiment
  // exposes only summaries, so sample directly at matching settings.
  const GlobalZeroObservable obs(6);
  const ParameterShiftEngine engine;
  std::vector<double> grads;
  for (std::uint64_t i = 0; i < 60; ++i) {
    Rng structure = Rng(200).child(i);
    VarianceAnsatzOptions ansatz_options;
    ansatz_options.layers = 25;
    const Circuit c = variance_ansatz(6, structure, ansatz_options);
    Rng prng = Rng(300).child(i);
    const auto params = random->initialize(c, prng);
    grads.push_back(
        engine.partial(c, obs, params, c.num_parameters() - 1));
  }
  EXPECT_GT(sample_excess_kurtosis(grads), 1.0);
  EXPECT_GT(result.series[0].points[0].gradient_summary.count, 0u);
}

}  // namespace
}  // namespace qbarren
