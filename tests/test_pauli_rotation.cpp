// Tests for compiled multi-qubit Pauli rotations and the HVA builder.
#include "qbarren/circuit/pauli_rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/grad/engine.hpp"
#include "qbarren/linalg/checks.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/obs/hva.hpp"
#include "qbarren/opt/trainer.hpp"

namespace qbarren {
namespace {

// Dense reference: exp(-i theta/2 P) = cos(theta/2) I - i sin(theta/2) P
// because every Pauli string squares to the identity.
ComplexMatrix pauli_string_matrix(const std::string& paulis) {
  const ComplexMatrix id = ComplexMatrix::identity(1);
  ComplexMatrix out = id;
  for (std::size_t q = paulis.size(); q-- > 0;) {
    ComplexMatrix factor(2, 2);
    switch (paulis[q]) {
      case 'I':
        factor = gates::identity2();
        break;
      case 'X':
        factor = gates::pauli_x();
        break;
      case 'Y':
        factor = gates::pauli_y();
        break;
      case 'Z':
        factor = gates::pauli_z();
        break;
    }
    out = kron(out, factor);
  }
  return out;
}

ComplexMatrix reference_rotation(const std::string& paulis, double theta) {
  const std::size_t dim = std::size_t{1} << paulis.size();
  const ComplexMatrix p = pauli_string_matrix(paulis);
  const Complex c{std::cos(theta / 2.0), 0.0};
  const Complex s{0.0, -std::sin(theta / 2.0)};
  return c * ComplexMatrix::identity(dim) + s * p;
}

class PauliRotationCase : public ::testing::TestWithParam<const char*> {};

TEST_P(PauliRotationCase, CompiledCircuitMatchesMatrixExponential) {
  const std::string paulis = GetParam();
  for (const double theta : {0.0, 0.4, -1.3, M_PI / 2.0, 2.9}) {
    Circuit c(paulis.size());
    const std::size_t param = add_pauli_rotation(c, paulis);
    EXPECT_EQ(param, 0u);
    const ComplexMatrix compiled = c.unitary(std::vector<double>{theta});
    const ComplexMatrix expected = reference_rotation(paulis, theta);
    EXPECT_LT(max_abs_diff(compiled, expected), 1e-10)
        << paulis << " at theta " << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Strings, PauliRotationCase,
                         ::testing::Values("Z", "X", "Y", "ZZ", "XX", "YY",
                                           "XY", "ZX", "IZ", "ZIZ", "XYZ",
                                           "IXIY"));

TEST(PauliRotation, Validation) {
  Circuit c(2);
  EXPECT_THROW((void)add_pauli_rotation(c, "Z"), InvalidArgument);
  EXPECT_THROW((void)add_pauli_rotation(c, "II"), InvalidArgument);
  EXPECT_THROW((void)add_pauli_rotation(c, "ZA"), InvalidArgument);
}

TEST(PauliRotation, ConsumesOneParameter) {
  Circuit c(3);
  (void)add_pauli_rotation(c, "ZZI");
  (void)add_pauli_rotation(c, "IXX");
  EXPECT_EQ(c.num_parameters(), 2u);
}

TEST(PauliRotation, ParameterShiftIsExact) {
  // The compiled rotation has generator P/2, so the standard two-term
  // shift rule applies.
  Circuit c(2);
  (void)add_pauli_rotation(c, "ZZ");
  c.add_hadamard(0);  // make the cost non-trivial
  const GlobalZeroObservable obs(2);
  const ParameterShiftEngine shift;
  const FiniteDifferenceEngine fd(1e-6);
  const std::vector<double> params{0.8};
  EXPECT_NEAR(shift.gradient(c, obs, params)[0],
              fd.gradient(c, obs, params)[0], 1e-6);
}

TEST(Hva, StructureForTfi) {
  const PauliSumObservable h = transverse_field_ising(4, 1.0, 0.5);
  HvaOptions options;
  options.layers = 3;
  const Circuit c = hva_ansatz(h, options);
  // 3 ZZ + 4 X terms -> 7 parameters per layer.
  EXPECT_EQ(c.num_parameters(), 21u);
  ASSERT_TRUE(c.layer_shape().has_value());
  EXPECT_EQ(c.layer_shape()->params_per_layer, 7u);
  // Hadamard wall present.
  EXPECT_EQ(c.operations()[0].kind, OpKind::kHadamard);
}

TEST(Hva, NoHadamardStart) {
  const PauliSumObservable h = transverse_field_ising(2, 1.0, 1.0);
  HvaOptions options;
  options.layers = 1;
  options.hadamard_start = false;
  const Circuit c = hva_ansatz(h, options);
  EXPECT_NE(c.operations()[0].kind, OpKind::kHadamard);
}

TEST(Hva, RejectsIdentityOnlyHamiltonian) {
  const PauliSumObservable h({{1.0, "II"}});
  EXPECT_THROW((void)hva_ansatz(h), InvalidArgument);
}

TEST(Hva, ReachesTfiGroundStateAtCriticalPoint) {
  // Two-qubit TFI at J = h = 1: a 2-layer HVA can represent the ground
  // state; Adam training should approach E0 = -sqrt(5).
  const auto h = std::make_shared<PauliSumObservable>(
      transverse_field_ising(2, 1.0, 1.0));
  HvaOptions options;
  options.layers = 2;
  auto circuit = std::make_shared<const Circuit>(hva_ansatz(*h, options));
  const CostFunction cost(circuit, h);
  const AdjointEngine engine;
  auto optimizer = make_optimizer("adam", 0.1);
  TrainOptions train_options;
  train_options.max_iterations = 150;
  const std::vector<double> init(circuit->num_parameters(), 0.1);
  const TrainResult result =
      train(cost, engine, *optimizer, init, train_options);
  EXPECT_NEAR(result.final_loss, -std::sqrt(5.0), 0.01);
}

}  // namespace
}  // namespace qbarren
