// Tests for the static circuit/experiment linter (analysis/lint.hpp):
// one positive and one negative fixture per rule QB001-QB010, the
// preflight entry points, and the diagnostics JSON round-trip through
// the common JSON parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qbarren/analysis/diagnostic.hpp"
#include "qbarren/analysis/lint.hpp"
#include "qbarren/analysis/preflight.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {
namespace {

std::size_t count_code(const Diagnostics& diagnostics,
                       const std::string& code) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const Diagnostics& diagnostics, const std::string& code) {
  return count_code(diagnostics, code) > 0;
}

std::vector<std::size_t> all_qubits(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t q = 0; q < n; ++q) out[q] = q;
  return out;
}

// --- QB001: structurally dead parameters -----------------------------------

TEST(LintQB001, FlagsDeadSampledParameterAsError) {
  // Eq-2 circuit vs the Z0 Z1 observable: the last rotation sits on the
  // top qubit with only the trailing CZ ladder after it, outside the
  // observable's backward light cone.
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const Circuit circuit = variance_ansatz(8, rng, options);

  CircuitLintContext context;
  context.observable_qubits = {0, 1};
  context.differentiated_parameter = circuit.num_parameters() - 1;
  const Diagnostics diags = lint_circuit(circuit, context);

  ASSERT_TRUE(has_code(diags, "QB001"));
  const auto it = std::find_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.code == "QB001" && d.severity == Severity::kError;
      });
  ASSERT_NE(it, diags.end());
  EXPECT_NE(it->message.find("differentiated parameter"), std::string::npos);
  EXPECT_TRUE(has_errors(diags));
}

TEST(LintQB001, SilentForGlobalObservable) {
  // Every parameter is inside the light cone of an all-qubit observable.
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const Circuit circuit = variance_ansatz(8, rng, options);

  CircuitLintContext context;
  context.observable_qubits = all_qubits(8);
  context.differentiated_parameter = circuit.num_parameters() - 1;
  EXPECT_FALSE(has_code(lint_circuit(circuit, context), "QB001"));
}

TEST(LintQB001, DeadNonSampledParametersAreWarnings) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const Circuit circuit = variance_ansatz(8, rng, options);

  CircuitLintContext context;
  context.observable_qubits = {0, 1};
  context.differentiated_parameter = 0;  // first parameter: alive
  const Diagnostics diags = lint_circuit(circuit, context);
  EXPECT_TRUE(has_code(diags, "QB001"));
  EXPECT_FALSE(has_errors(diags));
}

// --- QB002: barren-plateau risk ---------------------------------------------

TEST(LintQB002, FlagsGlobalCostOnDeepWideHea) {
  // The paper's Eq-3 training configuration: n = 10, L = 5 under the
  // Eq 4 global cost.
  const Circuit circuit = training_ansatz(10, {});
  CircuitLintContext context;
  context.observable_qubits = all_qubits(10);
  context.global_cost = true;
  const Diagnostics diags = lint_circuit(circuit, context);
  ASSERT_TRUE(has_code(diags, "QB002"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB002"; });
  EXPECT_EQ(it->severity, Severity::kWarning);
  EXPECT_NE(it->message.find("closed-form 2-design model predicts"),
            std::string::npos);
  EXPECT_NE(it->message.find("light-cone width"), std::string::npos);
}

TEST(LintQB002, SilentForLocalCostAndForShallowCircuits) {
  const Circuit deep = training_ansatz(10, {});
  CircuitLintContext local;
  local.observable_qubits = all_qubits(10);
  local.global_cost = false;  // local cost covering every qubit
  EXPECT_FALSE(has_code(lint_circuit(deep, local), "QB002"));

  TrainingAnsatzOptions shallow_options;
  shallow_options.layers = 1;  // depth below the BP threshold
  const Circuit shallow = training_ansatz(10, shallow_options);
  CircuitLintContext global;
  global.observable_qubits = all_qubits(10);
  global.global_cost = true;
  EXPECT_FALSE(has_code(lint_circuit(shallow, global), "QB002"));
}

// --- QB011: closed-form predicted gradient variance --------------------------

TEST(LintQB011, ReportsModelSummaryWithoutEscalationAtPaperWidths) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 50;
  const Circuit circuit = variance_ansatz(8, rng, options);

  CircuitLintContext context;
  context.observable_qubits = all_qubits(8);
  context.global_cost = true;
  context.differentiated_parameter = circuit.num_parameters() - 1;
  const Diagnostics diags = lint_circuit(circuit, context);

  ASSERT_TRUE(has_code(diags, "QB011"));
  // q = 8 predicts ~4.6e-6, above the 1e-6 default floor: info only.
  EXPECT_FALSE(has_errors(diags));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB011"; });
  EXPECT_EQ(it->severity, Severity::kInfo);
  EXPECT_NE(it->message.find("predicted Var[dC/dtheta]"), std::string::npos);
}

TEST(LintQB011, EscalatesProvablyBarrenDifferentiatedParameter) {
  // q = 10 under the global cost predicts ~2.9e-7 for the deepest
  // parameter — below the 1e-6 floor, so the run is refused statically.
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 50;
  const Circuit circuit = variance_ansatz(10, rng, options);

  CircuitLintContext context;
  context.observable_qubits = all_qubits(10);
  context.global_cost = true;
  context.differentiated_parameter = circuit.num_parameters() - 1;
  const Diagnostics diags = lint_circuit(circuit, context);

  const auto it = std::find_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.code == "QB011" && d.severity == Severity::kError;
      });
  ASSERT_NE(it, diags.end());
  EXPECT_NE(it->message.find("provably barren"), std::string::npos);

  // Without a differentiated parameter (training preflight) the same
  // circuit stays info-only: escalation is tied to the sampled gradient.
  CircuitLintContext training = context;
  training.differentiated_parameter.reset();
  EXPECT_FALSE(has_errors(lint_circuit(circuit, training)));

  // Raising the floor admits the run again.
  LintOptions lenient;
  lenient.bp_variance_floor = 1e-9;
  EXPECT_FALSE(has_errors(lint_circuit(circuit, context, lenient)));
}

TEST(LintQB011, RefusesCustomGatesWithInfoNotANumber) {
  // The closed-form model only covers the paper's gate set; a custom gate
  // must surface as an applicability finding, never a wrong number.
  Circuit circuit(2);
  circuit.add_rotation(gates::Axis::kX, 0);
  circuit.add_custom_gate("id", ComplexMatrix::identity(2), 1);

  CircuitLintContext context;
  context.observable_qubits = {0, 1};
  context.differentiated_parameter = 0;
  const Diagnostics diags = lint_circuit(circuit, context);
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB011"; });
  ASSERT_NE(it, diags.end());
  EXPECT_EQ(it->severity, Severity::kInfo);
  EXPECT_NE(it->message.find("custom"), std::string::npos);
}

// --- QN120: predicted variance below the FP noise floor ----------------------

TEST(LintQN120, FlagsVarianceBelowAccumulatedRoundingError) {
  // At q = 44 the 2-design prediction (~c0 * 2^(-88) ~ 1e-27) sinks below
  // the compiled plan's accumulated rounding-error bound: a Monte-Carlo
  // estimate would measure FP noise, not signal. Static only — no 2^44
  // state is ever allocated.
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const Circuit circuit = variance_ansatz(44, rng, options);

  CircuitLintContext context;
  context.observable_qubits = all_qubits(44);
  context.global_cost = true;
  context.differentiated_parameter = circuit.num_parameters() - 1;
  const Diagnostics diags = lint_circuit(circuit, context);

  const auto it = std::find_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.code == "QN120" && d.severity == Severity::kError;
      });
  ASSERT_NE(it, diags.end());
  EXPECT_NE(it->message.find("noise"), std::string::npos);
}

TEST(LintQN120, SilentAtPaperWidths) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 50;
  const Circuit circuit = variance_ansatz(10, rng, options);

  CircuitLintContext context;
  context.observable_qubits = all_qubits(10);
  context.global_cost = true;
  context.differentiated_parameter = circuit.num_parameters() - 1;
  EXPECT_FALSE(has_code(lint_circuit(circuit, context), "QN120"));
}

// --- QB003: redundant adjacent same-axis rotations ---------------------------

TEST(LintQB003, FlagsAdjacentSameAxisRotations) {
  Circuit circuit(2);
  circuit.add_rotation(gates::Axis::kX, 0);
  circuit.add_rotation(gates::Axis::kX, 0);  // fuses with the previous
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_TRUE(has_code(diags, "QB003"));
}

TEST(LintQB003, SilentForDifferentAxesOrInterveningGates) {
  Circuit different_axes(2);
  different_axes.add_rotation(gates::Axis::kX, 0);
  different_axes.add_rotation(gates::Axis::kY, 0);
  EXPECT_FALSE(has_code(lint_circuit(different_axes), "QB003"));

  Circuit interleaved(2);
  interleaved.add_rotation(gates::Axis::kX, 0);
  interleaved.add_cz(0, 1);  // breaks the adjacency
  interleaved.add_rotation(gates::Axis::kX, 0);
  EXPECT_FALSE(has_code(lint_circuit(interleaved), "QB003"));
}

// --- QB004: qubits untouched by entanglers ----------------------------------

TEST(LintQB004, FlagsUnentangledQubit) {
  Circuit circuit(3);
  circuit.add_rotation(gates::Axis::kY, 2);
  circuit.add_cz(0, 1);  // q[2] never entangles
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_EQ(count_code(diags, "QB004"), 1u);
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB004"; });
  EXPECT_EQ(it->location, "q[2]");
}

TEST(LintQB004, SilentForFullLadderAndSingleQubit) {
  Circuit ladder(3);
  add_cz_ladder(ladder);
  EXPECT_FALSE(has_code(lint_circuit(ladder), "QB004"));

  Circuit single(1);
  single.add_rotation(gates::Axis::kX, 0);
  EXPECT_FALSE(has_code(lint_circuit(single), "QB004"));
}

// --- QB005: layer-shape / parameter-count mismatch ---------------------------

TEST(LintQB005, FlagsShapeThatDoesNotTileParameters) {
  Circuit circuit(2);
  for (int i = 0; i < 5; ++i) {
    circuit.add_rotation(gates::Axis::kX, 0);
    circuit.add_rotation(gates::Axis::kY, 0);  // avoid QB003 noise
  }
  circuit.set_layer_shape({2, 3});  // 6 != 10 parameters
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_TRUE(has_code(diags, "QB005"));
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB005"; });
  EXPECT_EQ(it->severity, Severity::kWarning);
}

TEST(LintQB005, ConsistentShapeIsSilentAndMissingShapeIsInfo) {
  // The ansatz builders record consistent shapes.
  const Circuit eq3 = training_ansatz(4, {});
  EXPECT_FALSE(has_code(lint_circuit(eq3), "QB005"));

  Circuit bare(1);
  bare.add_rotation(gates::Axis::kZ, 0);
  const Diagnostics diags = lint_circuit(bare);
  ASSERT_EQ(count_code(diags, "QB005"), 1u);
  EXPECT_EQ(diags.front().severity, Severity::kInfo);
}

// --- QB006: malformed custom gates -------------------------------------------

TEST(LintQB006, FlagsWrongDimensionsAndNonUnitarity) {
  Circuit circuit(2);
  circuit.add_custom_gate("bad-dims", ComplexMatrix(3, 3), 0);
  ComplexMatrix not_unitary(2, 2);
  not_unitary(0, 0) = 2.0;  // scaling, not a unitary
  not_unitary(1, 1) = 1.0;
  circuit.add_custom_gate("not-unitary", not_unitary, 1);
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_EQ(count_code(diags, "QB006"), 2u);
  EXPECT_TRUE(has_errors(diags));
}

TEST(LintQB006, SilentForUnitaryCustomGates) {
  const double s = 1.0 / std::sqrt(2.0);
  ComplexMatrix hadamard(2, 2);
  hadamard(0, 0) = s;
  hadamard(0, 1) = s;
  hadamard(1, 0) = s;
  hadamard(1, 1) = -s;
  Circuit circuit(2);
  circuit.add_custom_gate("H", hadamard, 0);
  circuit.add_custom_two_qubit_gate("CZ'", ComplexMatrix::identity(4), 0, 1);
  EXPECT_FALSE(has_code(lint_circuit(circuit), "QB006"));
}

// --- QB008: adjacent cancelling gate pairs -----------------------------------

TEST(LintQB008, FlagsSelfInverseSingleQubitPair) {
  Circuit circuit(2);
  circuit.add_hadamard(0);
  circuit.add_hadamard(0);  // H H = I
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_EQ(count_code(diags, "QB008"), 1u);
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB008"; });
  EXPECT_EQ(it->severity, Severity::kWarning);
  EXPECT_NE(it->message.find("compose to the identity"), std::string::npos);
}

TEST(LintQB008, SeesThroughCommutingGatesOnOtherWires) {
  // The gate between the two H's touches only q[1], so it commutes past
  // both: the wire graph makes the H's adjacent up to commutation.
  Circuit circuit(2);
  circuit.add_hadamard(0);
  circuit.add_pauli_x(1);
  circuit.add_hadamard(0);
  EXPECT_EQ(count_code(lint_circuit(circuit), "QB008"), 1u);
}

TEST(LintQB008, FlagsTwoQubitPairsIncludingReversedOrder) {
  Circuit same_order(2);
  same_order.add_cnot(0, 1);
  same_order.add_cnot(0, 1);  // CNOT CNOT = I
  EXPECT_EQ(count_code(lint_circuit(same_order), "QB008"), 1u);

  // CZ is symmetric in its qubits, so cz(0,1) followed by cz(1,0) still
  // cancels: the rule must compare the matrices in a common qubit order.
  Circuit reversed(2);
  reversed.add_cz(0, 1);
  reversed.add_cz(1, 0);
  EXPECT_EQ(count_code(lint_circuit(reversed), "QB008"), 1u);
}

TEST(LintQB008, SilentForNonCancellingOrSeparatedPairs) {
  Circuit different(2);
  different.add_hadamard(0);
  different.add_pauli_x(0);  // X H != I
  EXPECT_FALSE(has_code(lint_circuit(different), "QB008"));

  // A gate on a shared wire between the pair breaks the adjacency.
  Circuit blocked(2);
  blocked.add_cnot(0, 1);
  blocked.add_pauli_z(1);
  blocked.add_cnot(0, 1);
  EXPECT_FALSE(has_code(lint_circuit(blocked), "QB008"));

  // Parameterized rotations have no constant matrix; QB003 owns them.
  Circuit parameterized(1);
  parameterized.add_rotation(gates::Axis::kX, 0);
  parameterized.add_rotation(gates::Axis::kX, 0);
  EXPECT_FALSE(has_code(lint_circuit(parameterized), "QB008"));
}

// --- QB009: per-parameter light-cone width report ----------------------------

TEST(LintQB009, ReportsWidthDistributionAndDifferentiatedParameter) {
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 6;
  const Circuit circuit = variance_ansatz(8, rng, options);
  CircuitLintContext context;
  context.observable_qubits = {0, 1};
  context.differentiated_parameter = 0;  // first parameter: alive
  const Diagnostics diags = lint_circuit(circuit, context);
  ASSERT_EQ(count_code(diags, "QB009"), 2u);
  const auto summary =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB009"; });
  EXPECT_EQ(summary->severity, Severity::kInfo);
  EXPECT_NE(summary->message.find("light-cone widths"), std::string::npos);
  EXPECT_NE(summary->message.find("structurally dead"), std::string::npos);
  const auto detail = std::find_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.code == "QB009" && d.location == "param 0";
      });
  ASSERT_NE(detail, diags.end());
  EXPECT_NE(detail->message.find("differentiated parameter 0"),
            std::string::npos);
}

TEST(LintQB009, SilentWithoutObservableContext) {
  const Circuit circuit = training_ansatz(4, {});
  EXPECT_FALSE(has_code(lint_circuit(circuit), "QB009"));
}

// --- QB010: static plan cost estimate ----------------------------------------

TEST(LintQB010, ReportsCompiledPlanCost) {
  const Circuit circuit = training_ansatz(4, {});
  const Diagnostics diags = lint_circuit(circuit);
  ASSERT_EQ(count_code(diags, "QB010"), 1u);
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [](const Diagnostic& d) { return d.code == "QB010"; });
  EXPECT_EQ(it->severity, Severity::kInfo);
  EXPECT_EQ(it->location, "plan");
  EXPECT_NE(it->message.find("flops"), std::string::npos);
}

TEST(LintQB010, SilentWhenTheCircuitCannotBeLowered) {
  // A malformed custom gate makes compile() refuse; QB006 owns the cause.
  Circuit circuit(1);
  circuit.add_custom_gate("bad-dims", ComplexMatrix(3, 3), 0);
  const Diagnostics diags = lint_circuit(circuit);
  EXPECT_FALSE(has_code(diags, "QB010"));
  EXPECT_TRUE(has_code(diags, "QB006"));
}

// --- QB007: seed reuse across cells ------------------------------------------

TEST(LintQB007, FlagsReusedSeeds) {
  const Diagnostics diags = lint_seed_assignments(
      {{"rep=0", 7}, {"rep=1", 8}, {"rep=2", 7}});
  ASSERT_EQ(count_code(diags, "QB007"), 1u);
  EXPECT_NE(diags.front().message.find("rep=0"), std::string::npos);
  EXPECT_NE(diags.front().message.find("rep=2"), std::string::npos);
}

TEST(LintQB007, SilentForDistinctSeeds) {
  EXPECT_TRUE(
      lint_seed_assignments({{"rep=0", 1}, {"rep=1", 2}, {"rep=2", 3}})
          .empty());
}

// --- options: disabling rules, finding caps ----------------------------------

TEST(LintOptionsTest, DisabledCodesSuppressRules) {
  Circuit circuit(2);
  circuit.add_rotation(gates::Axis::kX, 0);
  circuit.add_rotation(gates::Axis::kX, 0);
  LintOptions options;
  options.disabled_codes = {"QB003", "QB004", "QB005", "QB010"};
  EXPECT_TRUE(lint_circuit(circuit, {}, options).empty());
}

TEST(LintOptionsTest, PerRuleFindingCapFoldsOverflow) {
  Circuit circuit(2);
  for (int i = 0; i < 10; ++i) {
    circuit.add_rotation(gates::Axis::kX, 0);
  }
  LintOptions options;
  options.disabled_codes = {"QB004", "QB005", "QB010"};
  options.max_findings_per_rule = 3;
  const Diagnostics diags = lint_circuit(circuit, {}, options);
  // 9 redundant pairs -> 3 reported + 1 summary.
  ASSERT_EQ(count_code(diags, "QB003"), 4u);
  EXPECT_NE(diags.back().message.find("6 more"), std::string::npos);
}

TEST(LintRules, RegistryCoversAllCodesInOrder) {
  const std::vector<std::string> expected = {
      "QB001", "QB002", "QB003", "QB004", "QB005", "QB006",
      "QB007", "QB008", "QB009", "QB010", "QB011", "QN120"};
  const auto& rules = lint_rules();
  ASSERT_EQ(rules.size(), expected.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].code, expected[i]);
  }
  EXPECT_EQ(lint_rule_table().data().size(), expected.size());
}

// --- preflight ---------------------------------------------------------------

TEST(Preflight, VarianceZzLastParameterIsAnError) {
  // The runner-reachable QB001 configuration: --cost zz with the paper's
  // default sampled parameter (last).
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 8};
  options.layers = 6;
  options.cost = CostKind::kPauliZZ;
  const Diagnostics diags = lint_variance_options(options);
  EXPECT_TRUE(has_code(diags, "QB001"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(Preflight, VarianceGlobalCostFlagsBpRiskOnly) {
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 8};
  options.layers = 50;
  const Diagnostics diags = lint_variance_options(options);
  EXPECT_FALSE(has_errors(diags));
  EXPECT_TRUE(has_code(diags, "QB002"));
}

TEST(Preflight, TrainingPaperConfigurationFlagsBpRisk) {
  const Diagnostics diags = lint_training_options({});
  EXPECT_TRUE(has_code(diags, "QB002"));
  EXPECT_FALSE(has_errors(diags));
}

TEST(Preflight, SweepDerivedSeedsAreDistinct) {
  TrainingSweepOptions options;
  options.repetitions = 16;
  EXPECT_FALSE(has_code(lint_sweep_options(options), "QB007"));
}

TEST(Preflight, EnforceModesGateOnErrors) {
  Diagnostics errors = {{Severity::kError, "QB001", "dead", "param 0"}};
  Diagnostics warnings = {{Severity::kWarning, "QB002", "bp risk", "cost"}};

  EXPECT_TRUE(enforce_preflight(errors, LintMode::kOff, "t"));
  EXPECT_TRUE(enforce_preflight(errors, LintMode::kWarn, "t"));
  EXPECT_TRUE(enforce_preflight(warnings, LintMode::kError, "t"));
  try {
    enforce_preflight(errors, LintMode::kError, "t");
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics().front().code, "QB001");
  }
}

TEST(Preflight, ModeNamesRoundTrip) {
  for (const LintMode mode :
       {LintMode::kOff, LintMode::kWarn, LintMode::kError}) {
    EXPECT_EQ(lint_mode_from_name(lint_mode_name(mode)), mode);
  }
  EXPECT_THROW((void)lint_mode_from_name("loud"), NotFound);
}

// --- JSON round-trip ---------------------------------------------------------

TEST(DiagnosticJson, ReportRoundTripsThroughParser) {
  // Real findings -> JSON text -> parse_json -> diagnostics: the exact
  // path `qbarren lint --format=json` consumers take.
  Rng rng(3);
  VarianceAnsatzOptions ansatz_options;
  ansatz_options.layers = 6;
  const Circuit circuit = variance_ansatz(8, rng, ansatz_options);
  CircuitLintContext context;
  context.observable_qubits = {0, 1};
  context.differentiated_parameter = circuit.num_parameters() - 1;
  const Diagnostics original = lint_circuit(circuit, context);
  ASSERT_FALSE(original.empty());

  const std::string text = to_json(original).dump(2);
  const JsonValue parsed = parse_json(text);
  EXPECT_EQ(parsed.at("schema").as_string(), "qbarren.diagnostics.v1");
  EXPECT_EQ(parsed.at("counts").at("error").as_integer(),
            static_cast<std::int64_t>(
                count_severity(original, Severity::kError)));

  const Diagnostics round = diagnostics_from_json(parsed);
  ASSERT_EQ(round.size(), original.size());
  for (std::size_t i = 0; i < round.size(); ++i) {
    EXPECT_EQ(round[i].severity, original[i].severity);
    EXPECT_EQ(round[i].code, original[i].code);
    EXPECT_EQ(round[i].message, original[i].message);
    EXPECT_EQ(round[i].location, original[i].location);
  }
}

TEST(DiagnosticJson, FromJsonRejectsMalformedReports) {
  EXPECT_THROW((void)diagnostics_from_json(parse_json("{\"counts\": {}}")),
               InvalidArgument);
  EXPECT_THROW((void)diagnostic_from_json(parse_json(
                   "{\"severity\": \"fatal\", \"code\": \"QB001\","
                   " \"message\": \"m\", \"location\": \"\"}")),
               NotFound);
}

}  // namespace
}  // namespace qbarren
