// Tests for the light-cone (structural zero-gradient) analysis, including
// verification against actual gradients.
#include "qbarren/bp/lightcone.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {
namespace {

TEST(LightCone, Validation) {
  const Circuit c(2);
  EXPECT_THROW((void)analyze_light_cone(c, {}), InvalidArgument);
  EXPECT_THROW((void)analyze_light_cone(c, {2}), InvalidArgument);
}

TEST(LightCone, AllAliveForFullSupportObservable) {
  Rng rng(1);
  VarianceAnsatzOptions options;
  options.layers = 5;
  const Circuit c = variance_ansatz(4, rng, options);
  const LightConeReport report = analyze_light_cone(c, {0, 1, 2, 3});
  EXPECT_EQ(report.dead_count, 0u);
}

TEST(LightCone, LastRotationDeadForLocalObservable) {
  // The effect behind the ZZ ablation: the last layer's rotations on
  // qubits outside {0, 1} see only the (commuting) CZ ladder between them
  // and the observable.
  Rng rng(2);
  VarianceAnsatzOptions options;
  options.layers = 4;
  const Circuit c = variance_ansatz(5, rng, options);
  const LightConeReport report = analyze_light_cone(c, {0, 1});
  EXPECT_GT(report.dead_count, 0u);
  // The very last rotation acts on qubit 4 — dead.
  EXPECT_FALSE(report.alive[c.num_parameters() - 1]);
  // The first layer's rotations are behind the full circuit — alive.
  EXPECT_TRUE(report.alive[0]);
}

TEST(LightCone, StructurallyDeadParametersHaveZeroGradient) {
  // Verify the static analysis against actual parameter-shift gradients:
  // every "dead" parameter must measure exactly zero for every random
  // parameter draw (up to roundoff).
  Rng rng(3);
  VarianceAnsatzOptions options;
  options.layers = 3;
  const Circuit c = variance_ansatz(4, rng, options);
  std::string zz(4, 'I');
  zz[0] = 'Z';
  zz[1] = 'Z';
  const PauliStringObservable obs(zz);
  const LightConeReport report = analyze_light_cone(c, {0, 1});
  ASSERT_GT(report.dead_count, 0u);

  const ParameterShiftEngine engine;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    Rng prng = Rng(40).child(trial);
    const auto params =
        prng.uniform_vector(c.num_parameters(), 0.0, 2.0 * M_PI);
    const auto grad = engine.gradient(c, obs, params);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      if (!report.alive[i]) {
        EXPECT_NEAR(grad[i], 0.0, 1e-12) << "dead param " << i;
      }
    }
  }
}

TEST(LightCone, NoEntanglersMeansOnlyDirectQubitsAlive) {
  Circuit c(3);
  (void)c.add_rotation(gates::Axis::kX, 0);
  (void)c.add_rotation(gates::Axis::kY, 1);
  (void)c.add_rotation(gates::Axis::kZ, 2);
  const LightConeReport report = analyze_light_cone(c, {1});
  EXPECT_TRUE(report.alive[1]);
  EXPECT_FALSE(report.alive[0]);
  EXPECT_FALSE(report.alive[2]);
  EXPECT_EQ(report.dead_count, 2u);
}

TEST(LightCone, EntanglerExtendsSupportBackward) {
  Circuit c(2);
  (void)c.add_rotation(gates::Axis::kX, 1);  // before the CZ: alive
  c.add_cz(0, 1);
  (void)c.add_rotation(gates::Axis::kX, 1);  // after the CZ: dead for {0}
  const LightConeReport report = analyze_light_cone(c, {0});
  EXPECT_TRUE(report.alive[0]);
  EXPECT_FALSE(report.alive[1]);
}

TEST(LightCone, TableShape) {
  Circuit c(2);
  (void)c.add_rotation(gates::Axis::kX, 0);
  const LightConeReport report = analyze_light_cone(c, {0});
  const Table table = light_cone_table({{"toy", report}});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.columns(), 4u);
  EXPECT_EQ(table.data()[0][0], "toy");
  EXPECT_EQ(table.data()[0][2], "0");
}

// Property: the deeper the observable's support spreads, the fewer dead
// parameters remain; full support is always a lower bound of zero dead.
class LightConeMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LightConeMonotone, WiderSupportNeverIncreasesDeadCount) {
  Rng rng(GetParam());
  VarianceAnsatzOptions options;
  options.layers = 4;
  const Circuit c = variance_ansatz(5, rng, options);
  std::vector<std::size_t> support{0};
  std::size_t previous_dead = c.num_parameters() + 1;
  for (std::size_t q = 1; q <= 4; ++q) {
    const LightConeReport report = analyze_light_cone(c, support);
    EXPECT_LE(report.dead_count, previous_dead);
    previous_dead = report.dead_count;
    support.push_back(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LightConeMonotone,
                         ::testing::Values(10, 11, 12, 13));

}  // namespace
}  // namespace qbarren
