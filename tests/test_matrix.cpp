// Unit tests for DenseMatrix (real and complex).
#include "qbarren/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

TEST(DenseMatrix, ConstructionAndAccess) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, RejectsZeroDimensions) {
  EXPECT_THROW(RealMatrix(0, 1), InvalidArgument);
  EXPECT_THROW(RealMatrix(1, 0), InvalidArgument);
}

TEST(DenseMatrix, DataConstructorChecksSize) {
  EXPECT_THROW(RealMatrix(2, 2, {1.0, 2.0}), InvalidArgument);
  const RealMatrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, IndexOutOfRangeThrows) {
  RealMatrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), InvalidArgument);
  EXPECT_THROW((void)m(0, 2), InvalidArgument);
}

TEST(DenseMatrix, IdentityIsIdentity) {
  const RealMatrix id = RealMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrix, MultiplyKnownValues) {
  const RealMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const RealMatrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  const RealMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrix, MultiplyRectangular) {
  const RealMatrix a(1, 3, {1.0, 2.0, 3.0});
  const RealMatrix b(3, 1, {4.0, 5.0, 6.0});
  const RealMatrix c = a * b;
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 32.0);
}

TEST(DenseMatrix, MultiplyShapeMismatchThrows) {
  const RealMatrix a(2, 3);
  const RealMatrix b(2, 3);
  EXPECT_THROW((void)(a * b), InvalidArgument);
}

TEST(DenseMatrix, AddSubtract) {
  const RealMatrix a(1, 2, {1.0, 2.0});
  const RealMatrix b(1, 2, {10.0, 20.0});
  const RealMatrix sum = a + b;
  const RealMatrix diff = b - a;
  EXPECT_DOUBLE_EQ(sum(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(sum(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  EXPECT_THROW((void)(a + RealMatrix(2, 2)), InvalidArgument);
  EXPECT_THROW((void)(a - RealMatrix(2, 1)), InvalidArgument);
}

TEST(DenseMatrix, ScalarMultiply) {
  const RealMatrix a(1, 2, {1.0, -2.0});
  const RealMatrix s = 3.0 * a;
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), -6.0);
}

TEST(DenseMatrix, Transpose) {
  const RealMatrix a(2, 3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const RealMatrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(DenseMatrix, ApplyVector) {
  const RealMatrix a(2, 2, {0.0, 1.0, 1.0, 0.0});
  const std::vector<double> v{3.0, 7.0};
  const auto out = a.apply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_THROW((void)a.apply({1.0}), InvalidArgument);
}

TEST(ComplexMatrix, AdjointConjugatesAndTransposes) {
  ComplexMatrix m(2, 2);
  m(0, 1) = Complex{1.0, 2.0};
  m(1, 0) = Complex{3.0, -4.0};
  const ComplexMatrix a = adjoint(m);
  EXPECT_EQ(a(1, 0), (Complex{1.0, -2.0}));
  EXPECT_EQ(a(0, 1), (Complex{3.0, 4.0}));
}

TEST(Kron, KnownValues) {
  const RealMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const RealMatrix b(2, 2, {0.0, 1.0, 1.0, 0.0});
  const RealMatrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  // Top-left block = 1 * b.
  EXPECT_DOUBLE_EQ(k(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(k(0, 1), 1.0);
  // Top-right block = 2 * b.
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0);
  // Bottom-right block = 4 * b.
  EXPECT_DOUBLE_EQ(k(3, 2), 4.0);
}

TEST(Kron, IdentityIsNeutralUpToOrdering) {
  const RealMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  const RealMatrix k = kron(RealMatrix::identity(1), a);
  EXPECT_DOUBLE_EQ(max_abs_diff(k, a), 0.0);
}

TEST(FrobeniusDistance, ZeroForEqualAndPositiveOtherwise) {
  const RealMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  RealMatrix b = a;
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 0.0);
  b(0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 3.0);
  EXPECT_THROW((void)frobenius_distance(a, RealMatrix(1, 1)),
               InvalidArgument);
}

TEST(Checks, UnitaryAndHermitianPredicates) {
  ComplexMatrix h(2, 2);
  h(0, 1) = Complex{0.0, -1.0};
  h(1, 0) = Complex{0.0, 1.0};  // Pauli-Y: both Hermitian and unitary
  EXPECT_TRUE(is_unitary(h));
  EXPECT_TRUE(is_hermitian(h));

  ComplexMatrix not_unitary(2, 2);
  not_unitary(0, 0) = 2.0;
  not_unitary(1, 1) = 1.0;
  EXPECT_FALSE(is_unitary(not_unitary));
  EXPECT_TRUE(is_hermitian(not_unitary));

  EXPECT_FALSE(is_unitary(ComplexMatrix(2, 3)));
  EXPECT_FALSE(is_hermitian(ComplexMatrix(2, 3)));
}

}  // namespace
}  // namespace qbarren
