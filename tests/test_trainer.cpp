// Tests for the training-loop driver.
#include "qbarren/opt/trainer.hpp"

#include <gtest/gtest.h>

#include "qbarren/circuit/ansatz.hpp"

namespace qbarren {
namespace {

CostFunction small_cost(std::size_t qubits = 2, std::size_t layers = 2) {
  TrainingAnsatzOptions options;
  options.layers = layers;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(qubits, options));
  return make_identity_cost(circuit);
}

TEST(Trainer, ValidatesInitialParamCount) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.1);
  EXPECT_THROW((void)train(cost, engine, opt, std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(Trainer, HistoriesHaveDocumentedSizes) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.1);
  TrainOptions options;
  options.max_iterations = 7;
  const std::vector<double> init(cost.num_parameters(), 0.3);
  const TrainResult result = train(cost, engine, opt, init, options);
  EXPECT_EQ(result.iterations, 7u);
  EXPECT_EQ(result.loss_history.size(), 8u);
  EXPECT_EQ(result.gradient_norm_history.size(), 7u);
  EXPECT_EQ(result.final_params.size(), cost.num_parameters());
  EXPECT_DOUBLE_EQ(result.loss_history.front(), result.initial_loss);
  EXPECT_DOUBLE_EQ(result.loss_history.back(), result.final_loss);
}

TEST(Trainer, GradientNormsOptional) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.1);
  TrainOptions options;
  options.max_iterations = 3;
  options.record_gradient_norms = false;
  const std::vector<double> init(cost.num_parameters(), 0.3);
  const TrainResult result = train(cost, engine, opt, init, options);
  EXPECT_TRUE(result.gradient_norm_history.empty());
}

TEST(Trainer, LossDecreasesOnEasyProblem) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.2);
  TrainOptions options;
  options.max_iterations = 60;
  const std::vector<double> init(cost.num_parameters(), 0.4);
  const TrainResult result = train(cost, engine, opt, init, options);
  EXPECT_GT(result.initial_loss, 0.05);
  EXPECT_LT(result.final_loss, 0.01);
  EXPECT_LT(result.final_loss, result.initial_loss);
}

TEST(Trainer, TargetLossStopsEarly) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.2);
  TrainOptions options;
  options.max_iterations = 200;
  options.target_loss = 0.05;
  const std::vector<double> init(cost.num_parameters(), 0.4);
  const TrainResult result = train(cost, engine, opt, init, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.iterations, 200u);
  EXPECT_LE(result.final_loss, 0.05);
}

TEST(Trainer, AlreadyBelowTargetTakesNoSteps) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.1);
  TrainOptions options;
  options.max_iterations = 10;
  options.target_loss = 0.5;
  // Zero parameters: the circuit is the identity, loss 0 < target.
  const std::vector<double> zeros(cost.num_parameters(), 0.0);
  const TrainResult result = train(cost, engine, opt, zeros, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.loss_history.size(), 1u);
}

TEST(Trainer, ZeroIterationsIsANoOp) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  GradientDescent opt(0.1);
  TrainOptions options;
  options.max_iterations = 0;
  const std::vector<double> init(cost.num_parameters(), 0.2);
  const TrainResult result = train(cost, engine, opt, init, options);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.final_params, init);
  EXPECT_DOUBLE_EQ(result.initial_loss, result.final_loss);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const CostFunction cost = small_cost();
  const AdjointEngine engine;
  TrainOptions options;
  options.max_iterations = 10;
  const std::vector<double> init(cost.num_parameters(), 0.25);

  AdamOptimizer opt1(0.1);
  AdamOptimizer opt2(0.1);
  const TrainResult a = train(cost, engine, opt1, init, options);
  const TrainResult b = train(cost, engine, opt2, init, options);
  EXPECT_EQ(a.loss_history, b.loss_history);
  EXPECT_EQ(a.final_params, b.final_params);
}

TEST(Trainer, ParameterShiftAndAdjointTrainIdentically) {
  const CostFunction cost = small_cost(2, 1);
  TrainOptions options;
  options.max_iterations = 8;
  const std::vector<double> init(cost.num_parameters(), 0.3);

  const AdjointEngine adjoint;
  const ParameterShiftEngine shift;
  GradientDescent opt1(0.1);
  GradientDescent opt2(0.1);
  const TrainResult a = train(cost, adjoint, opt1, init, options);
  const TrainResult b = train(cost, shift, opt2, init, options);
  ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
  for (std::size_t i = 0; i < a.loss_history.size(); ++i) {
    EXPECT_NEAR(a.loss_history[i], b.loss_history[i], 1e-9);
  }
}

}  // namespace
}  // namespace qbarren
