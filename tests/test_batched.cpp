// Tests for batched plan execution: the BatchedStateVector container, the
// process batch-limit policy, and — most importantly — exact byte-identity
// (==, not near) of every batched consumer against its serial counterpart:
// simulate/expectation, the shifted-binding evaluator, all shift-rule
// gradient engines, landscape rows, variance cells, and Rotosolve.
#include "qbarren/exec/batched.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/obs/observable.hpp"
#include "qbarren/opt/rotosolve.hpp"
#include "qbarren/qsim/batched_statevector.hpp"

namespace qbarren {
namespace {

// Same 13-kind random circuit generator as test_exec.cpp: every op kind
// the builders expose, so the batched kernels all get exercised.
Circuit random_circuit(Rng& rng, std::size_t qubits, std::size_t num_ops) {
  Circuit c(qubits);
  const auto axis = [&] {
    const std::size_t a = rng.index(3);
    return a == 0 ? gates::Axis::kX : a == 1 ? gates::Axis::kY : gates::Axis::kZ;
  };
  const auto pair = [&](std::size_t& a, std::size_t& b) {
    a = rng.index(qubits);
    b = rng.index(qubits - 1);
    if (b >= a) ++b;
  };
  for (std::size_t i = 0; i < num_ops; ++i) {
    const std::size_t q = rng.index(qubits);
    std::size_t a = 0;
    std::size_t b = 0;
    switch (rng.index(13)) {
      case 0:
        c.add_rotation(axis(), q);
        break;
      case 1:
        pair(a, b);
        c.add_controlled_rotation(axis(), a, b);
        break;
      case 2:
        c.add_fixed_rotation(axis(), q, rng.uniform(-M_PI, M_PI));
        break;
      case 3:
        c.add_hadamard(q);
        break;
      case 4:
        c.add_pauli_x(q);
        break;
      case 5:
        c.add_pauli_y(q);
        break;
      case 6:
        c.add_pauli_z(q);
        break;
      case 7:
        c.add_s(q);
        break;
      case 8:
        c.add_t(q);
        break;
      case 9:
        pair(a, b);
        c.add_cz(a, b);
        break;
      case 10:
        pair(a, b);
        c.add_cnot(a, b);
        break;
      case 11:
        pair(a, b);
        c.add_swap(a, b);
        break;
      case 12:
        if (rng.bernoulli(0.5)) {
          c.add_custom_gate("u3", gates::u3(rng.uniform(0.0, M_PI),
                                            rng.uniform(0.0, 2.0 * M_PI),
                                            rng.uniform(0.0, 2.0 * M_PI)),
                            q);
        } else {
          pair(a, b);
          c.add_custom_two_qubit_gate(
              "crz*swap", gates::crz(rng.uniform(-M_PI, M_PI)) * gates::swap(),
              std::min(a, b), std::max(a, b));
        }
        break;
    }
  }
  return c;
}

void expect_states_equal(const StateVector& got, const StateVector& want) {
  ASSERT_EQ(got.dimension(), want.dimension());
  for (std::size_t i = 0; i < got.dimension(); ++i) {
    EXPECT_EQ(got.amplitudes()[i].real(), want.amplitudes()[i].real()) << i;
    EXPECT_EQ(got.amplitudes()[i].imag(), want.amplitudes()[i].imag()) << i;
  }
}

void expect_vectors_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "index " << i;
  }
}

// --- BatchedStateVector ------------------------------------------------------

TEST(BatchedStateVector, StartsWithEveryLaneInZeroState) {
  BatchedStateVector batch(3, 4);
  EXPECT_EQ(batch.num_qubits(), 3u);
  EXPECT_EQ(batch.batch_size(), 4u);
  EXPECT_EQ(batch.dimension(), 8u);
  for (std::size_t b = 0; b < batch.batch_size(); ++b) {
    const StateVector lane = batch.extract_lane(b);
    EXPECT_EQ(lane.amplitudes()[0], Complex(1.0, 0.0));
    for (std::size_t i = 1; i < lane.dimension(); ++i) {
      EXPECT_EQ(lane.amplitudes()[i], Complex(0.0, 0.0));
    }
  }
}

TEST(BatchedStateVector, SetAndExtractLaneRoundTrip) {
  Rng rng(11);
  Circuit c = random_circuit(rng, 3, 12);
  const std::vector<double> params =
      rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);
  const StateVector reference = c.simulate(params);

  BatchedStateVector batch(3, 3);
  batch.set_lane(1, reference);
  expect_states_equal(batch.extract_lane(1), reference);
  // The other lanes are untouched.
  EXPECT_EQ(batch.extract_lane(0).amplitudes()[0], Complex(1.0, 0.0));
  EXPECT_EQ(batch.extract_lane(2).amplitudes()[0], Complex(1.0, 0.0));

  batch.reset();
  EXPECT_EQ(batch.extract_lane(1).amplitudes()[0], Complex(1.0, 0.0));
}

TEST(BatchedStateVector, RejectsInvalidShapesAndLanes) {
  EXPECT_THROW(BatchedStateVector(0, 2), InvalidArgument);
  EXPECT_THROW(BatchedStateVector(2, 0), InvalidArgument);
  BatchedStateVector batch(2, 2);
  EXPECT_THROW((void)batch.lane(2), InvalidArgument);
  EXPECT_THROW((void)batch.extract_lane(5), InvalidArgument);
  EXPECT_THROW(batch.set_lane(2, StateVector(2)), InvalidArgument);
  EXPECT_THROW(batch.set_lane(0, StateVector(3)), InvalidArgument);
}

// --- batch-limit policy ------------------------------------------------------

TEST(BatchPolicy, DefaultsToOffAndScopedLimitRestores) {
  EXPECT_EQ(exec::batch_limit(), exec::kBatchOff);
  EXPECT_FALSE(exec::batching_enabled());
  {
    exec::ScopedBatchLimit limit(8);
    EXPECT_EQ(exec::batch_limit(), 8u);
    EXPECT_TRUE(exec::batching_enabled());
    {
      exec::ScopedBatchLimit inner(exec::kBatchAuto);
      EXPECT_EQ(exec::batch_limit(), exec::kBatchAuto);
      EXPECT_TRUE(exec::batching_enabled());
    }
    EXPECT_EQ(exec::batch_limit(), 8u);
  }
  EXPECT_EQ(exec::batch_limit(), exec::kBatchOff);
  EXPECT_FALSE(exec::batching_enabled());
}

TEST(BatchPolicy, ResolveBatchLanesCapsAndFloors) {
  // Explicit limit: min(limit, natural), at least 1.
  EXPECT_EQ(exec::resolve_batch_lanes(4, 100), 4u);
  EXPECT_EQ(exec::resolve_batch_lanes(4, 3), 3u);
  EXPECT_EQ(exec::resolve_batch_lanes(1, 100), 1u);
  EXPECT_EQ(exec::resolve_batch_lanes(7, 0), 1u);
  // Auto: min(kAutoBatchLanes, natural).
  EXPECT_EQ(exec::resolve_batch_lanes(exec::kBatchAuto, 100),
            exec::kAutoBatchLanes);
  EXPECT_EQ(exec::resolve_batch_lanes(exec::kBatchAuto, 5), 5u);
}

// --- simulate_batch / expectation_batch --------------------------------------

TEST(BatchedExecution, SimulateBatchMatchesSerialLaneByLane) {
  Rng rng(21);
  for (const std::size_t qubits : {2u, 4u, 5u}) {
    for (const std::size_t lanes : {1u, 3u, 8u}) {
      Circuit c = random_circuit(rng, qubits, 24);
      const auto plan = exec::plan_for(c);
      ASSERT_NE(plan, nullptr);
      const std::size_t num_params = c.num_parameters();

      std::vector<double> bindings(lanes * num_params);
      for (double& v : bindings) v = rng.uniform(-M_PI, M_PI);

      const BatchedStateVector batch = plan->simulate_batch(bindings, lanes);
      for (std::size_t b = 0; b < lanes; ++b) {
        const std::vector<double> row(
            bindings.begin() + static_cast<std::ptrdiff_t>(b * num_params),
            bindings.begin() +
                static_cast<std::ptrdiff_t>((b + 1) * num_params));
        expect_states_equal(batch.extract_lane(b), c.simulate(row));
      }
    }
  }
}

TEST(BatchedExecution, ExpectationBatchMatchesSerialForEveryObservable) {
  Rng rng(22);
  const std::size_t qubits = 4;
  Circuit c = random_circuit(rng, qubits, 30);
  const auto plan = exec::plan_for(c);
  ASSERT_NE(plan, nullptr);
  const std::size_t num_params = c.num_parameters();

  const GlobalZeroObservable global(qubits);
  const LocalZeroObservable local(qubits);

  const std::size_t lanes = 5;  // deliberately not a power of two
  std::vector<double> bindings(lanes * num_params);
  for (double& v : bindings) v = rng.uniform(-M_PI, M_PI);

  const std::vector<double> got_global =
      plan->expectation_batch(global, bindings, lanes);
  const std::vector<double> got_local =
      plan->expectation_batch(local, bindings, lanes);
  ASSERT_EQ(got_global.size(), lanes);
  for (std::size_t b = 0; b < lanes; ++b) {
    const std::vector<double> row(
        bindings.begin() + static_cast<std::ptrdiff_t>(b * num_params),
        bindings.begin() + static_cast<std::ptrdiff_t>((b + 1) * num_params));
    const StateVector state = c.simulate(row);
    EXPECT_EQ(got_global[b], global.expectation(state)) << b;
    EXPECT_EQ(got_local[b], local.expectation(state)) << b;
  }
}

// --- shifted_expectations ----------------------------------------------------

TEST(ShiftedExpectations, MatchesPartialEvaluatorAtEveryChunking) {
  Rng rng(31);
  const std::size_t qubits = 4;
  Circuit c = random_circuit(rng, qubits, 36);
  const auto plan = exec::plan_for(c);
  ASSERT_NE(plan, nullptr);
  const std::size_t num_params = c.num_parameters();
  if (num_params == 0) GTEST_SKIP() << "random draw produced no parameters";
  const GlobalZeroObservable observable(qubits);
  const std::vector<double> params =
      rng.uniform_vector(num_params, -M_PI, M_PI);

  std::vector<exec::ShiftSpec> specs;
  for (std::size_t p = 0; p < num_params; ++p) {
    specs.push_back({p, M_PI / 2.0});
    specs.push_back({p, -M_PI / 2.0});
    if (p % 3 == 0) specs.push_back({p, 3.0 * M_PI / 2.0});
  }

  std::vector<double> want(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    exec::PartialEvaluator cost(plan, observable, params, specs[s].param);
    want[s] = cost(specs[s].delta);
  }

  // Every chunking — single-lane, tiny, non-power-of-two, auto, and wider
  // than the spec list — must reproduce the serial evaluator exactly.
  for (const std::size_t limit : {1u, 2u, 5u, 16u, 1000u}) {
    exec::ScopedBatchLimit scoped(limit);
    expect_vectors_equal(
        exec::shifted_expectations(*plan, observable, params, specs), want);
  }
  {
    exec::ScopedBatchLimit scoped(exec::kBatchAuto);
    expect_vectors_equal(
        exec::shifted_expectations(*plan, observable, params, specs), want);
  }
}

// --- gradient engines --------------------------------------------------------

TEST(BatchedGradients, ShiftRuleEnginesMatchSerialExactly) {
  Rng rng(41);
  const std::size_t qubits = 4;
  for (int round = 0; round < 3; ++round) {
    Circuit c = random_circuit(rng, qubits, 32);
    // Guarantee both shift rules fire: a plain rotation and a controlled
    // rotation (4-term rule) are always present.
    c.add_rotation(gates::Axis::kY, 1);
    c.add_controlled_rotation(gates::Axis::kZ, 0, 2);
    const std::size_t num_params = c.num_parameters();
    const GlobalZeroObservable observable(qubits);
    const std::vector<double> params =
        rng.uniform_vector(num_params, -M_PI, M_PI);

    for (const char* name : {"parameter-shift", "finite-difference"}) {
      const auto engine = make_gradient_engine(name);
      const std::vector<double> serial_grad =
          engine->gradient(c, observable, params);
      const double serial_partial =
          engine->partial(c, observable, params, num_params - 1);
      for (const std::size_t limit : {exec::kBatchAuto, 2ul, 5ul, 16ul}) {
        exec::ScopedBatchLimit scoped(limit);
        expect_vectors_equal(engine->gradient(c, observable, params),
                             serial_grad);
        EXPECT_EQ(engine->partial(c, observable, params, num_params - 1),
                  serial_partial)
            << name << " limit " << limit;
      }
    }
  }
}

TEST(BatchedGradients, SpsaMatchesSerialExactly) {
  Rng rng(42);
  const std::size_t qubits = 4;
  Circuit c = random_circuit(rng, qubits, 28);
  c.add_rotation(gates::Axis::kX, 0);
  const GlobalZeroObservable observable(qubits);
  const std::vector<double> params =
      rng.uniform_vector(c.num_parameters(), -M_PI, M_PI);

  // SPSA is stateful (its own RNG advances per call), so each comparison
  // uses a fresh engine seeded identically.
  const std::vector<double> serial =
      SpsaEngine(7, 0.1).gradient(c, observable, params);
  for (const std::size_t limit : {exec::kBatchAuto, 2ul, 16ul}) {
    exec::ScopedBatchLimit scoped(limit);
    expect_vectors_equal(SpsaEngine(7, 0.1).gradient(c, observable, params),
                         serial);
  }
}

TEST(BatchedGradients, MalformedCustomGateStillFallsBackToInterpreted) {
  // compile() refuses the 3x3 "gate", plan_for returns nullptr, and the
  // engines take their interpreted path — a batch limit changes nothing,
  // including the interpreted fallback's error report on execution.
  Circuit c(2);
  c.add_rotation(gates::Axis::kX, 0);
  c.add_custom_gate("bad-dims", ComplexMatrix(3, 3), 1);
  c.add_rotation(gates::Axis::kY, 1);
  const GlobalZeroObservable observable(2);
  const std::vector<double> params{0.3, -1.1};

  const auto engine = make_gradient_engine("parameter-shift");
  {
    exec::ScopedBatchLimit scoped(8);
    EXPECT_EQ(exec::plan_for(c), nullptr);
    EXPECT_THROW((void)engine->gradient(c, observable, params),
                 InvalidArgument);
    EXPECT_THROW((void)c.simulate(params), InvalidArgument);
  }
}

// --- landscape ---------------------------------------------------------------

TEST(BatchedLandscape, ScanMatchesSerialAtNonPowerOfTwoWidth) {
  LandscapeOptions options;
  options.qubits = 3;
  options.layers = 4;
  options.grid_points = 7;  // 7 % 3 != 0: rows chunk unevenly
  options.seed = 5;
  const LandscapeResult serial = scan_landscape(options);
  for (const std::size_t limit : {3ul, exec::kBatchAuto}) {
    exec::ScopedBatchLimit scoped(limit);
    const LandscapeResult batched = scan_landscape(options);
    expect_vectors_equal(batched.values, serial.values);
    EXPECT_EQ(batched.min_value, serial.min_value);
    EXPECT_EQ(batched.max_value, serial.max_value);
    EXPECT_EQ(batched.stddev, serial.stddev);
  }
}

// --- variance ----------------------------------------------------------------

TEST(BatchedVariance, CellSamplesMatchSerialExactly) {
  VarianceExperimentOptions options;
  options.qubit_counts = {3};
  options.circuits_per_point = 6;
  options.layers = 5;
  options.seed = 42;
  const auto initializers = paper_initializers();
  ASSERT_FALSE(initializers.empty());
  const auto engine = make_gradient_engine(options.gradient_engine);

  const std::vector<double> serial = compute_variance_cell(
      options, 0, *initializers.front(), 0, *engine);
  {
    exec::ScopedBatchLimit scoped(exec::kBatchAuto);
    expect_vectors_equal(
        compute_variance_cell(options, 0, *initializers.front(), 0, *engine),
        serial);
  }
}

TEST(BatchedSweep, FinalLossesMatchSerialExactly) {
  // The CLI's `sweep --batch` path: a whole training sweep under a
  // scoped batch limit is byte-identical to the serial run.
  TrainingSweepOptions options;
  options.base.qubits = 3;
  options.base.layers = 2;
  options.base.iterations = 3;
  options.base.seed = 11;
  options.repetitions = 2;
  const auto owned = paper_initializers();
  std::vector<const Initializer*> inits;
  for (const auto& init : owned) inits.push_back(init.get());

  const TrainingSweepResult serial = run_training_sweep(inits, options);
  exec::ScopedBatchLimit scoped(4);
  const TrainingSweepResult batched = run_training_sweep(inits, options);
  ASSERT_EQ(batched.series.size(), serial.series.size());
  for (std::size_t s = 0; s < serial.series.size(); ++s) {
    expect_vectors_equal(batched.series[s].final_losses,
                         serial.series[s].final_losses);
  }
}

// --- rotosolve ---------------------------------------------------------------

TEST(BatchedRotosolve, TrainingHistoryMatchesSerialExactly) {
  auto circuit = std::make_shared<Circuit>(3);
  for (std::size_t layer = 0; layer < 3; ++layer) {
    for (std::size_t q = 0; q < 3; ++q) {
      circuit->add_rotation(gates::Axis::kX, q);
      circuit->add_rotation(gates::Axis::kY, q);
    }
    circuit->add_cz(0, 1);
    circuit->add_cz(1, 2);
  }
  const CostFunction cost = make_identity_cost(circuit);
  Rng rng(9);
  const std::vector<double> init =
      rng.uniform_vector(cost.num_parameters(), -M_PI, M_PI);

  RotosolveOptions options;
  options.max_sweeps = 3;
  const TrainResult serial = train_rotosolve(cost, init, options);
  {
    exec::ScopedBatchLimit scoped(4);
    const TrainResult batched = train_rotosolve(cost, init, options);
    expect_vectors_equal(batched.loss_history, serial.loss_history);
    expect_vectors_equal(batched.final_params, serial.final_params);
    EXPECT_EQ(batched.final_loss, serial.final_loss);
  }
}

}  // namespace
}  // namespace qbarren
