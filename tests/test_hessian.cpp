// Tests for parameter-shift second derivatives.
#include "qbarren/grad/hessian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

TEST(Hessian, AnalyticSecondDerivativeOfOneQubitCost) {
  // C(theta) = sin^2(theta/2) => C'' = cos(theta) / 2.
  Circuit c(1);
  (void)c.add_rotation(gates::Axis::kY, 0);
  const GlobalZeroObservable obs(1);
  for (const double theta : {0.0, 0.4, M_PI / 2.0, 2.8, -1.1}) {
    const double d2 =
        second_partial(c, obs, std::vector<double>{theta}, 0);
    EXPECT_NEAR(d2, std::cos(theta) / 2.0, 1e-11) << theta;
  }
}

TEST(Hessian, MatchesFiniteDifferences) {
  TrainingAnsatzOptions options;
  options.layers = 1;
  const Circuit c = training_ansatz(2, options);
  const GlobalZeroObservable obs(2);
  Rng rng(3);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  const RealMatrix h = hessian(c, obs, params);

  const double step = 1e-4;
  auto cost_at = [&](std::vector<double> p) {
    return obs.expectation(c.simulate(p));
  };
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params.size(); ++j) {
      std::vector<double> p = params;
      p[i] += step;
      p[j] += step;
      const double pp = cost_at(p);
      p = params;
      p[i] += step;
      p[j] -= step;
      const double pm = cost_at(p);
      p = params;
      p[i] -= step;
      p[j] += step;
      const double mp = cost_at(p);
      p = params;
      p[i] -= step;
      p[j] -= step;
      const double mm = cost_at(p);
      const double fd = (pp - pm - mp + mm) / (4.0 * step * step);
      EXPECT_NEAR(h(i, j), fd, 1e-4) << i << "," << j;
    }
  }
}

TEST(Hessian, IsSymmetric) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  const GlobalZeroObservable obs(3);
  Rng rng(5);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  const RealMatrix h = hessian(c, obs, params);
  EXPECT_LT(max_abs_diff(h, h.transpose()), 1e-12);
}

TEST(Hessian, DiagonalMatchesFullMatrix) {
  TrainingAnsatzOptions options;
  options.layers = 1;
  const Circuit c = training_ansatz(3, options);
  const GlobalZeroObservable obs(3);
  Rng rng(7);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  const RealMatrix h = hessian(c, obs, params);
  const auto diag = hessian_diagonal(c, obs, params);
  for (std::size_t i = 0; i < diag.size(); ++i) {
    EXPECT_NEAR(diag[i], h(i, i), 1e-12);
  }
}

TEST(Hessian, PositiveSemidefiniteAtGlobalMinimum) {
  // At theta = 0 the identity cost is at its global minimum: the Hessian
  // diagonal cannot be negative (each 1-D slice is minimized).
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c = training_ansatz(3, options);
  const GlobalZeroObservable obs(3);
  const std::vector<double> zeros(c.num_parameters(), 0.0);
  for (const double d : hessian_diagonal(c, obs, zeros)) {
    EXPECT_GE(d, -1e-11);
  }
}

TEST(Hessian, Validation) {
  Circuit c(1);
  (void)c.add_rotation(gates::Axis::kY, 0);
  const GlobalZeroObservable obs(1);
  const GlobalZeroObservable wide(2);
  const std::vector<double> params{0.1};
  EXPECT_THROW((void)second_partial(c, obs, params, 1), InvalidArgument);
  EXPECT_THROW((void)second_partial(c, wide, params, 0), InvalidArgument);
  EXPECT_THROW((void)mixed_partial(c, obs, std::vector<double>{}, 0, 0),
               InvalidArgument);
  const Circuit empty(1);
  EXPECT_THROW((void)hessian(empty, obs, {}), InvalidArgument);
}

TEST(Hessian, CurvatureVanishesOnPlateau) {
  // The second-order signature of BP: the typical curvature magnitude
  // shrinks with width for randomly initialized deep circuits.
  const auto random = make_initializer("random");
  auto typical_curvature = [&](std::size_t qubits) {
    std::vector<double> values;
    for (std::uint64_t t = 0; t < 10; ++t) {
      Rng structure = Rng(10).child(t);
      VarianceAnsatzOptions options;
      options.layers = 20;
      const Circuit c = variance_ansatz(qubits, structure, options);
      Rng prng = Rng(20).child(t);
      const auto params = random->initialize(c, prng);
      const GlobalZeroObservable obs(qubits);
      values.push_back(std::abs(
          second_partial(c, obs, params, c.num_parameters() - 1)));
    }
    return mean(values);
  };
  EXPECT_GT(typical_curvature(2), 5.0 * typical_curvature(6));
}

}  // namespace
}  // namespace qbarren
