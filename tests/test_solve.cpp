// Tests for the dense linear solvers (Cholesky / regularized SPD / LU).
#include "qbarren/linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qbarren/common/rng.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

RealMatrix random_spd(std::size_t n, Rng& rng, double diag_boost = 0.5) {
  // A = B Bᵀ + diag_boost * I is SPD for any B.
  RealMatrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      b(r, c) = rng.normal();
    }
  }
  RealMatrix a = b * b.transpose();
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += diag_boost;
  }
  return a;
}

std::vector<double> multiply(const RealMatrix& a,
                             const std::vector<double>& x) {
  return a.apply(x);
}

double max_abs(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Cholesky, FactorizesKnownMatrix) {
  // A = [[4, 2], [2, 3]] = L Lᵀ with L = [[2, 0], [1, sqrt(2)]].
  const RealMatrix a(2, 2, {4.0, 2.0, 2.0, 3.0});
  const RealMatrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(l(0, 1), 0.0, 1e-12);
  EXPECT_LT(max_abs_diff(l * l.transpose(), a), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  const RealMatrix indefinite(2, 2, {1.0, 2.0, 2.0, 1.0});
  EXPECT_THROW((void)cholesky(indefinite), NumericalError);
  EXPECT_THROW((void)cholesky(RealMatrix(2, 3)), InvalidArgument);
}

TEST(SolveSpd, RecoversKnownSolution) {
  const RealMatrix a(2, 2, {4.0, 2.0, 2.0, 3.0});
  const std::vector<double> x_true{1.0, -2.0};
  const std::vector<double> b = multiply(a, x_true);
  const auto x = solve_spd(a, b);
  EXPECT_LT(max_abs(x, x_true), 1e-12);
}

TEST(SolveSpd, DimensionMismatchThrows) {
  const RealMatrix a(2, 2, {1.0, 0.0, 0.0, 1.0});
  EXPECT_THROW((void)solve_spd(a, {1.0}), InvalidArgument);
}

TEST(SolveRegularized, LambdaZeroMatchesPlainSolve) {
  Rng rng(1);
  const RealMatrix a = random_spd(4, rng);
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  EXPECT_LT(max_abs(solve_regularized(a, b, 0.0), solve_spd(a, b)), 1e-10);
}

TEST(SolveRegularized, RescuesSingularMatrix) {
  // Rank-1 PSD matrix: unsolvable at lambda = 0, fine with lambda > 0.
  const RealMatrix a(2, 2, {1.0, 1.0, 1.0, 1.0});
  EXPECT_THROW((void)solve_spd(a, {1.0, 1.0}), NumericalError);
  const auto x = solve_regularized(a, {1.0, 1.0}, 1e-3);
  // (A + λI) x = b verified directly.
  RealMatrix reg = a;
  reg(0, 0) += 1e-3;
  reg(1, 1) += 1e-3;
  EXPECT_LT(max_abs(multiply(reg, x), {1.0, 1.0}), 1e-10);
}

TEST(SolveRegularized, NegativeLambdaThrows) {
  const RealMatrix a(1, 1, {1.0});
  EXPECT_THROW((void)solve_regularized(a, {1.0}, -1.0), InvalidArgument);
}

TEST(SolveLu, SolvesGeneralSystem) {
  // Non-symmetric, needs pivoting (zero leading entry).
  const RealMatrix a(3, 3, {0.0, 2.0, 1.0,   //
                            1.0, 1.0, 0.0,   //
                            -1.0, 0.0, 3.0});
  const std::vector<double> x_true{2.0, -1.0, 0.5};
  const auto x = solve_lu(a, multiply(a, x_true));
  EXPECT_LT(max_abs(x, x_true), 1e-10);
}

TEST(SolveLu, SingularMatrixThrows) {
  const RealMatrix a(2, 2, {1.0, 2.0, 2.0, 4.0});
  EXPECT_THROW((void)solve_lu(a, {1.0, 2.0}), NumericalError);
}

TEST(SolveLu, ValidatesShapes) {
  EXPECT_THROW((void)solve_lu(RealMatrix(2, 3), {1.0, 2.0}),
               InvalidArgument);
  const RealMatrix a(2, 2, {1.0, 0.0, 0.0, 1.0});
  EXPECT_THROW((void)solve_lu(a, {1.0}), InvalidArgument);
}

// Property sweep: random SPD systems of growing size solve to high
// accuracy with both solvers.
class SolverAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverAccuracy, RandomSpdSystems) {
  const std::size_t n = GetParam();
  Rng rng(splitmix64(n + 7));
  const RealMatrix a = random_spd(n, rng);
  std::vector<double> x_true(n);
  for (auto& v : x_true) {
    v = rng.normal();
  }
  const std::vector<double> b = multiply(a, x_true);
  EXPECT_LT(max_abs(solve_spd(a, b), x_true), 1e-8) << "cholesky n=" << n;
  EXPECT_LT(max_abs(solve_lu(a, b), x_true), 1e-8) << "lu n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverAccuracy,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50, 100));

}  // namespace
}  // namespace qbarren
