// Micro-benchmarks of the gradient engines: full-gradient cost as a
// function of parameter count. Parameter-shift scales as 2P circuit
// simulations; adjoint as a constant number of sweeps — the reason the
// training experiments default to adjoint while the variance analysis
// (one partial derivative per circuit) uses parameter-shift like the
// paper.
#include <chrono>
#include <functional>

#include "bench_common.hpp"
#include "qbarren/analysis/plan_verify.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/observable.hpp"

namespace {

using namespace qbarren;

struct Setup {
  Circuit circuit;
  GlobalZeroObservable observable;
  std::vector<double> params;

  explicit Setup(std::size_t qubits, std::size_t layers)
      : circuit(make_circuit(qubits, layers)), observable(qubits) {
    Rng rng(5);
    params = rng.uniform_vector(circuit.num_parameters(), 0.0, 2.0 * M_PI);
  }

  static Circuit make_circuit(std::size_t qubits, std::size_t layers) {
    TrainingAnsatzOptions options;
    options.layers = layers;
    return training_ansatz(qubits, options);
  }
};

void bm_full_gradient(benchmark::State& state, const char* engine_name) {
  const Setup setup(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  const auto engine = make_gradient_engine(engine_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->gradient(setup.circuit, setup.observable, setup.params)
            .data());
  }
  state.SetLabel(std::to_string(setup.circuit.num_parameters()) + " params");
}

void bm_parameter_shift(benchmark::State& state) {
  bm_full_gradient(state, "parameter-shift");
}
void bm_adjoint(benchmark::State& state) { bm_full_gradient(state, "adjoint"); }
void bm_finite_difference(benchmark::State& state) {
  bm_full_gradient(state, "finite-difference");
}
void bm_spsa(benchmark::State& state) { bm_full_gradient(state, "spsa"); }

BENCHMARK(bm_parameter_shift)
    ->Args({4, 2})->Args({8, 4})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_adjoint)
    ->Args({4, 2})->Args({8, 4})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_finite_difference)
    ->Args({4, 2})->Args({8, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_spsa)
    ->Args({4, 2})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);

void bm_single_partial_parameter_shift(benchmark::State& state) {
  // The variance experiment's unit of work: one partial derivative of the
  // last parameter.
  const Setup setup(static_cast<std::size_t>(state.range(0)), 5);
  const ParameterShiftEngine engine;
  const std::size_t last = setup.circuit.num_parameters() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.partial(setup.circuit, setup.observable, setup.params, last));
  }
}
BENCHMARK(bm_single_partial_parameter_shift)->Arg(4)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

// --- compiled vs interpreted -----------------------------------------------
//
// Times the same single-threaded workload through the compiled execution
// plan (the default) and through the interpreted op walk (plans disabled),
// and reports the ratio plus the plan's lowering counters in the JSON
// output. CI's bench-smoke step uploads these counters.

void time_compiled_vs_interpreted(benchmark::State& state, const Setup& setup,
                                  const Circuit& interpreted, int reps,
                                  const std::function<void(const Circuit&)>& work) {
  using Clock = std::chrono::steady_clock;
  const auto plan = exec::plan_for(setup.circuit);
  double compiled_seconds = 0.0;
  double interpreted_seconds = 0.0;
  // Untimed warmup of both paths: the first few repetitions pay cold
  // caches and lazy gate-matrix statics, which would otherwise be charged
  // entirely to whichever segment runs first.
  for (int r = 0; r < 3; ++r) {
    work(setup.circuit);
    exec::ScopedExecutionPlans off(false);
    work(interpreted);
  }
  for (auto _ : state) {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      work(setup.circuit);
    }
    const auto t1 = Clock::now();
    {
      exec::ScopedExecutionPlans off(false);
      for (int r = 0; r < reps; ++r) {
        work(interpreted);
      }
    }
    const auto t2 = Clock::now();
    compiled_seconds += std::chrono::duration<double>(t1 - t0).count();
    interpreted_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["compiled_seconds"] = compiled_seconds / n;
  state.counters["interpreted_seconds"] = interpreted_seconds / n;
  state.counters["speedup"] = compiled_seconds > 0.0
                                  ? interpreted_seconds / compiled_seconds
                                  : 0.0;
  if (plan != nullptr) {
    const auto& stats = plan->stats();
    state.counters["lowered_ops"] = static_cast<double>(stats.plan_ops);
    state.counters["fused_ops"] = static_cast<double>(stats.fused_source_ops);
    state.counters["matrices_cached"] =
        static_cast<double>(stats.cached_matrices);
    // QB010's static cost model, so each uploaded JSON pairs the measured
    // times with the plan's predicted work per application.
    const PlanResourceEstimate estimate = estimate_plan_resources(*plan);
    state.counters["plan_flops"] = estimate.flops;
    state.counters["plan_bytes"] = estimate.bytes;
  }
}

void bm_compiled_adjoint_deep_hea(benchmark::State& state) {
  // Deep HEA, full adjoint gradient — the Fig 5b/5c training unit of work.
  const Setup setup(6, 40);
  const Circuit interpreted = setup.circuit;  // copied before lowering
  const AdjointEngine engine;
  time_compiled_vs_interpreted(
      state, setup, interpreted, /*reps=*/20, [&](const Circuit& c) {
        benchmark::DoNotOptimize(
            engine.gradient(c, setup.observable, setup.params).data());
      });
  state.SetLabel("q=6 L=40 adjoint, compiled vs interpreted");
}
BENCHMARK(bm_compiled_adjoint_deep_hea)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void bm_compiled_parameter_shift_last_param(benchmark::State& state) {
  // The Fig 5a unit of work: parameter-shift partial of the LAST
  // parameter. The compiled path additionally reuses the prefix state
  // before the shifted gate across both +-pi/2 evaluations.
  const Setup setup(6, 40);
  const Circuit interpreted = setup.circuit;
  const ParameterShiftEngine engine;
  const std::size_t last = setup.circuit.num_parameters() - 1;
  time_compiled_vs_interpreted(
      state, setup, interpreted, /*reps=*/200, [&](const Circuit& c) {
        benchmark::DoNotOptimize(
            engine.partial(c, setup.observable, setup.params, last));
      });
  state.SetLabel("q=6 L=40 parameter-shift last param, compiled vs "
                 "interpreted");
}
BENCHMARK(bm_compiled_parameter_shift_last_param)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// --- batched vs serial parameter-shift ---------------------------------------
//
// The batched dispatcher evaluates all 2P shifted bindings of a full
// parameter-shift gradient in one monotonic walk of the kernel-op stream
// (chunked to the batch limit), instead of a fresh prefix simulation per
// parameter. This bench sweeps the batch width B and reports serial and
// batched wall-clock, the speedup, states-per-second throughput, and the
// static cost model's prediction at batch=B. CI's bench-smoke step
// uploads the counters.

void bm_batched_parameter_shift(benchmark::State& state) {
  const Setup setup(6, 40);  // deep HEA: q=6, L=40, P=480
  const auto plan = exec::plan_for(setup.circuit);
  const ParameterShiftEngine engine;
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  using Clock = std::chrono::steady_clock;
  double serial_seconds = 0.0;
  double batched_seconds = 0.0;
  // Untimed warmup of both paths (cold caches, lazy statics).
  benchmark::DoNotOptimize(
      engine.gradient(setup.circuit, setup.observable, setup.params).data());
  {
    exec::ScopedBatchLimit limit(lanes);
    benchmark::DoNotOptimize(
        engine.gradient(setup.circuit, setup.observable, setup.params)
            .data());
  }
  // Alternate serial and batched within each rep so machine-load drift
  // hits both paths evenly instead of biasing whichever ran later.
  constexpr int kReps = 5;
  for (auto _ : state) {
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      benchmark::DoNotOptimize(
          engine.gradient(setup.circuit, setup.observable, setup.params)
              .data());
      const auto t1 = Clock::now();
      {
        exec::ScopedBatchLimit limit(lanes);
        benchmark::DoNotOptimize(
            engine.gradient(setup.circuit, setup.observable, setup.params)
                .data());
      }
      const auto t2 = Clock::now();
      serial_seconds += std::chrono::duration<double>(t1 - t0).count();
      batched_seconds += std::chrono::duration<double>(t2 - t1).count();
    }
  }
  const double n = static_cast<double>(state.iterations()) * kReps;
  const double shifted_bindings =
      2.0 * static_cast<double>(setup.circuit.num_parameters());
  state.counters["batch"] = static_cast<double>(lanes);
  state.counters["serial_seconds"] = serial_seconds / n;
  state.counters["batched_seconds"] = batched_seconds / n;
  state.counters["batched_speedup"] =
      batched_seconds > 0.0 ? serial_seconds / batched_seconds : 0.0;
  // Shifted-binding simulations completed per second of batched execution.
  state.counters["states_per_second"] =
      batched_seconds > 0.0 ? shifted_bindings * n / batched_seconds : 0.0;
  if (plan != nullptr) {
    const PlanResourceEstimate estimate =
        estimate_plan_resources(*plan, lanes);
    state.counters["plan_flops"] = estimate.flops;
    state.counters["plan_bytes"] = estimate.bytes;
    state.counters["plan_shared_bytes"] = estimate.shared_bytes;
  }
  state.SetLabel("q=6 L=40 parameter-shift full gradient, batched vs serial");
}
BENCHMARK(bm_batched_parameter_shift)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// --- plan verification overhead ---------------------------------------------
//
// The --verify-plans flag adds one verify_plan() call per fresh lowering.
// This bench times compilation and verification of the same circuit
// separately and reports both plus their ratio. Both are one-time
// microsecond-scale costs amortized over thousands of plan applications;
// the counters keep the verifier honest as checks grow (today it costs
// ~2x the — very cheap — compile step, i.e. microseconds per plan).

void bm_plan_verify(benchmark::State& state) {
  const Setup setup(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  using Clock = std::chrono::steady_clock;
  double compile_seconds = 0.0;
  double verify_seconds = 0.0;
  std::size_t findings = 0;
  for (auto _ : state) {
    const auto t0 = Clock::now();
    const auto plan = exec::CompiledCircuit::compile(setup.circuit);
    const auto t1 = Clock::now();
    const Diagnostics diagnostics = verify_plan(setup.circuit, *plan);
    const auto t2 = Clock::now();
    benchmark::DoNotOptimize(diagnostics.size());
    compile_seconds += std::chrono::duration<double>(t1 - t0).count();
    verify_seconds += std::chrono::duration<double>(t2 - t1).count();
    findings = diagnostics.size();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["compile_seconds"] = compile_seconds / n;
  state.counters["verify_seconds"] = verify_seconds / n;
  state.counters["verify_over_compile"] =
      compile_seconds > 0.0 ? verify_seconds / compile_seconds : 0.0;
  state.counters["verify_findings"] = static_cast<double>(findings);
  state.SetLabel("verify_plan vs compile, one plan");
}
BENCHMARK(bm_plan_verify)
    ->Args({4, 2})->Args({10, 5})->Args({6, 40})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
