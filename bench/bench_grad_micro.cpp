// Micro-benchmarks of the gradient engines: full-gradient cost as a
// function of parameter count. Parameter-shift scales as 2P circuit
// simulations; adjoint as a constant number of sweeps — the reason the
// training experiments default to adjoint while the variance analysis
// (one partial derivative per circuit) uses parameter-shift like the
// paper.
#include "bench_common.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/observable.hpp"

namespace {

using namespace qbarren;

struct Setup {
  Circuit circuit;
  GlobalZeroObservable observable;
  std::vector<double> params;

  explicit Setup(std::size_t qubits, std::size_t layers)
      : circuit(make_circuit(qubits, layers)), observable(qubits) {
    Rng rng(5);
    params = rng.uniform_vector(circuit.num_parameters(), 0.0, 2.0 * M_PI);
  }

  static Circuit make_circuit(std::size_t qubits, std::size_t layers) {
    TrainingAnsatzOptions options;
    options.layers = layers;
    return training_ansatz(qubits, options);
  }
};

void bm_full_gradient(benchmark::State& state, const char* engine_name) {
  const Setup setup(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  const auto engine = make_gradient_engine(engine_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->gradient(setup.circuit, setup.observable, setup.params)
            .data());
  }
  state.SetLabel(std::to_string(setup.circuit.num_parameters()) + " params");
}

void bm_parameter_shift(benchmark::State& state) {
  bm_full_gradient(state, "parameter-shift");
}
void bm_adjoint(benchmark::State& state) { bm_full_gradient(state, "adjoint"); }
void bm_finite_difference(benchmark::State& state) {
  bm_full_gradient(state, "finite-difference");
}
void bm_spsa(benchmark::State& state) { bm_full_gradient(state, "spsa"); }

BENCHMARK(bm_parameter_shift)
    ->Args({4, 2})->Args({8, 4})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_adjoint)
    ->Args({4, 2})->Args({8, 4})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_finite_difference)
    ->Args({4, 2})->Args({8, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_spsa)
    ->Args({4, 2})->Args({10, 5})
    ->Unit(benchmark::kMillisecond);

void bm_single_partial_parameter_shift(benchmark::State& state) {
  // The variance experiment's unit of work: one partial derivative of the
  // last parameter.
  const Setup setup(static_cast<std::size_t>(state.range(0)), 5);
  const ParameterShiftEngine engine;
  const std::size_t last = setup.circuit.num_parameters() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.partial(setup.circuit, setup.observable, setup.params, last));
  }
}
BENCHMARK(bm_single_partial_parameter_shift)->Arg(4)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
