// Fig 5c reproduction: identity-function training with Adam.
//
// Identical protocol to Fig 5b (10 qubits, 5 layers, 50 iterations, step
// size 0.1, global identity cost) with the Adam optimizer. The paper's
// observation: Adam's per-parameter normalization lets even the randomly
// initialized circuit escape the plateau, but random remains the slowest
// while the classical strategies converge quickly.
#include "bench_common.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Fig 5c — loss convergence, Adam, 10-qubit / 5-layer HEA",
      "50 iterations, lr 0.1, global identity cost, seed 7");

  TrainingExperimentOptions options;
  options.optimizer = "adam";
  const TrainingExperiment experiment(options);
  const TrainingResult result = experiment.run_paper_set();

  std::printf("%s\n", result.loss_table(5).to_ascii().c_str());
  std::printf("%s\n", result.summary_table().to_ascii().c_str());
  std::printf(
      "expected shape (paper Fig 5c): all strategies eventually reach low\n"
      "loss under Adam; random starts at ~1.0 and lags the classical\n"
      "strategies through the early iterations.\n\n");
}

void bm_adam_step(benchmark::State& state) {
  using namespace qbarren;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AdamOptimizer optimizer(0.1);
  optimizer.reset(n);
  std::vector<double> params(n, 0.1);
  std::vector<double> grad(n, 0.01);
  for (auto _ : state) {
    optimizer.step(params, grad);
    benchmark::DoNotOptimize(params.data());
  }
}
BENCHMARK(bm_adam_step)->Arg(100)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
