// Ablation: the shot cost of resolving plateau gradients.
//
// On hardware, C(theta) is estimated from a finite number of measurement
// shots with standard error ~ sqrt(p(1-p)/shots). A parameter-shift
// gradient is a difference of two such estimates, so gradients below
// roughly sqrt(2) * stderr drown in shot noise. Combining the Fig 5a
// variance data with the shot-noise formula gives the practical reading
// of the barren plateau: the shots needed to resolve a typical gradient
// grow exponentially with width — unless initialization keeps gradients
// large (Xavier column).
#include <cmath>

#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/qsim/gates.hpp"
#include "qbarren/qsim/sampling.hpp"

namespace {

using namespace qbarren;

// Shots needed for sqrt(2) * stderr(p=0.5) to fall below |g|.
double shots_to_resolve(double typical_gradient) {
  const double g = std::abs(typical_gradient);
  if (g <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 2.0 * 0.25 / (g * g);  // 2 * p(1-p) / g^2 at p = 1/2
}

void reproduce() {
  bench::print_banner(
      "Ablation — shots required to resolve plateau gradients",
      "typical gradient = sqrt(Var) from the Fig 5a protocol "
      "(100 circuits/point, depth 50)");

  VarianceExperimentOptions options;
  options.circuits_per_point = 100;
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  const VarianceResult result =
      VarianceExperiment(options).run({random.get(), xavier.get()});

  Table table({"qubits", "|g| random", "shots to resolve (random)",
               "|g| xavier", "shots to resolve (xavier)"});
  for (std::size_t row = 0; row < result.series[0].points.size(); ++row) {
    const double g_rand = std::sqrt(result.series[0].points[row].variance);
    const double g_xav = std::sqrt(result.series[1].points[row].variance);
    table.begin_row();
    table.push(result.series[0].points[row].qubits);
    table.push_sci(g_rand);
    table.push_sci(shots_to_resolve(g_rand));
    table.push_sci(g_xav);
    table.push_sci(shots_to_resolve(g_xav));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: the random column's shot requirement explodes\n"
      "exponentially with width; Xavier keeps it within practical "
      "budgets.\n\n");
}

void bm_sampling(benchmark::State& state) {
  StateVector s(10);
  const ComplexMatrix h = gates::hadamard();
  for (std::size_t q = 0; q < 10; ++q) {
    s.apply_single_qubit(h, q);
  }
  Rng rng(1);
  const auto shots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_global_cost(s, shots, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shots));
}
BENCHMARK(bm_sampling)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
