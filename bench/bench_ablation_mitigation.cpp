// Ablation: the paper's initialization fix vs the related-work mitigation
// strategies it surveys (§II), on one common task.
//
// Task: learn the identity at 8 qubits (global cost), the regime where
// plain random-initialized gradient descent is pinned to the plateau.
// Contenders:
//   * random + GD            — the paper's failing baseline
//   * xavier-normal + GD     — the paper's proposed fix (§VI-B)
//   * random + Adam          — optimizer-side mitigation (Fig 5c)
//   * random + QNG           — quantum natural gradient (§II-b)
//   * growing layer-wise     — Skolik-style depth growth (§II-c), Adam
//   * identity blocks + GD   — Grant-style mirror initialization (§II-a)
#include "bench_common.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/layerwise.hpp"
#include "qbarren/opt/natural_gradient.hpp"
#include "qbarren/opt/rotosolve.hpp"
#include "qbarren/opt/trainer.hpp"

namespace {

using namespace qbarren;

constexpr std::size_t kQubits = 8;
constexpr std::size_t kLayers = 4;
constexpr std::size_t kIterations = 50;

void add_row(Table& table, const std::string& label,
             const TrainResult& result) {
  table.begin_row();
  table.push(label);
  table.push(result.initial_loss, 4);
  table.push(result.loss_history[result.loss_history.size() / 2], 4);
  table.push(result.final_loss, 4);
}

void reproduce() {
  bench::print_banner(
      "Ablation — initialization fix vs §II mitigation strategies",
      "identity learning, 8 qubits, depth 4, 50 iterations, lr 0.1");

  const AdjointEngine engine;
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = kLayers;
  auto circuit = std::make_shared<const Circuit>(
      training_ansatz(kQubits, ansatz_options));
  const CostFunction cost = make_identity_cost(circuit);

  Table table({"strategy", "initial loss", "mid loss", "final loss"});

  TrainOptions train_options;
  train_options.max_iterations = kIterations;

  // random + GD (the paper's failing baseline).
  {
    Rng rng(7);
    auto params = make_initializer("random")->initialize(*circuit, rng);
    auto gd = make_optimizer("gradient-descent", 0.1);
    add_row(table, "random + GD",
            train(cost, engine, *gd, std::move(params), train_options));
  }
  // xavier-normal + GD (the paper's fix).
  {
    Rng rng(7);
    auto params =
        make_initializer("xavier-normal")->initialize(*circuit, rng);
    auto gd = make_optimizer("gradient-descent", 0.1);
    add_row(table, "xavier-normal + GD",
            train(cost, engine, *gd, std::move(params), train_options));
  }
  // random + Adam (Fig 5c).
  {
    Rng rng(7);
    auto params = make_initializer("random")->initialize(*circuit, rng);
    auto adam = make_optimizer("adam", 0.1);
    add_row(table, "random + Adam",
            train(cost, engine, *adam, std::move(params), train_options));
  }
  // random + quantum natural gradient (§II-b).
  {
    Rng rng(7);
    auto params = make_initializer("random")->initialize(*circuit, rng);
    NaturalGradientOptions qng;
    qng.max_iterations = kIterations;
    qng.learning_rate = 0.1;
    add_row(table, "random + QNG",
            train_natural_gradient(cost, engine, std::move(params), qng));
  }
  // Growing layer-wise (§II-c) with Adam stages.
  {
    GrowingLayerwiseOptions grow;
    grow.qubits = kQubits;
    grow.total_layers = kLayers;
    grow.iterations_per_stage = kIterations / kLayers;
    grow.learning_rate = 0.1;
    grow.optimizer = "adam";
    grow.seed = 7;
    auto obs = std::make_shared<GlobalZeroObservable>(kQubits);
    add_row(table, "growing layer-wise + Adam",
            train_layerwise_growing(obs, engine, grow));
  }
  // random + Rotosolve (gradient-free closed-form updates; each sweep
  // costs ~3 evaluations per parameter, comparable to parameter-shift GD).
  {
    Rng rng(7);
    auto params = make_initializer("random")->initialize(*circuit, rng);
    RotosolveOptions roto;
    roto.max_sweeps = 5;
    add_row(table, "random + Rotosolve (5 sweeps)",
            train_rotosolve(cost, std::move(params), roto));
  }
  // Identity blocks (§II-a) + GD on the mirror ansatz (same total depth).
  {
    Rng structure_rng(7);
    const MirrorBlockAnsatz mirror =
        mirror_block_ansatz(kQubits, 1, kLayers / 2, structure_rng);
    auto mirror_circuit =
        std::make_shared<const Circuit>(mirror.circuit);
    const CostFunction mirror_cost = make_identity_cost(mirror_circuit);
    Rng param_rng(8);
    auto params = initialize_identity_blocks(mirror, param_rng);
    auto gd = make_optimizer("gradient-descent", 0.1);
    add_row(table, "identity blocks + GD",
            train(mirror_cost, engine, *gd, std::move(params),
                  train_options));
  }

  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: random + GD is pinned near 1.0. Adam, Rotosolve,\n"
      "growing layer-wise, Xavier and identity blocks all escape. QNG does\n"
      "NOT rescue a random start at this width: on the plateau the metric\n"
      "flattens along with the gradient, so the regularized natural\n"
      "gradient step is as tiny as the vanilla one — geometry is no cure\n"
      "for exponentially small signal. The paper's point stands: Xavier\n"
      "initialization fixes the start at zero algorithmic overhead.\n\n");
}

void bm_qng_iteration(benchmark::State& state) {
  TrainingAnsatzOptions options;
  options.layers = 3;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(6, options));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;
  Rng rng(1);
  const auto params =
      rng.uniform_vector(circuit->num_parameters(), 0.0, 6.0);
  NaturalGradientOptions qng;
  qng.max_iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        train_natural_gradient(cost, engine, params, qng).final_loss);
  }
  state.SetLabel("metric + solve, 36 params");
}
BENCHMARK(bm_qng_iteration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
