// Fig 1 reproduction: barren-plateau landscape flattening.
//
// The paper's Fig 1 plots the cost surface of a depth-100 HEA (RX, RY per
// qubit + CZ ladder) over two parameters at 2, 5, and 10 qubits, showing
// the landscape flattening as width grows. This harness regenerates the
// three scans and prints the flatness metrics (range / stddev of the cost
// over the grid); the paper's qualitative claim corresponds to both
// metrics shrinking monotonically with qubit count.
#include "bench_common.hpp"
#include "qbarren/bp/landscape.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Fig 1 — optimization landscape vs qubit count",
      "depth-100 HEA, identity cost, 21x21 scan of the first two "
      "parameters,\nrandom background parameters (seed 1)");

  LandscapeOptions base;
  base.layers = 100;
  base.grid_points = 21;
  base.seed = 1;

  const std::vector<std::size_t> widths{2, 5, 10};
  std::printf("%s\n",
              landscape_flatness_table(widths, base).to_ascii().c_str());
  std::printf(
      "expected shape (paper): surface visibly flattens from (a) 2 qubits\n"
      "to (c) 10 qubits; here both range and stddev must fall "
      "monotonically.\n\n");
}

void bm_landscape_scan(benchmark::State& state) {
  using namespace qbarren;
  LandscapeOptions options;
  options.qubits = static_cast<std::size_t>(state.range(0));
  options.layers = 100;
  options.grid_points = 5;
  options.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_landscape(options).range);
  }
  state.SetLabel(std::to_string(options.grid_points) + "x" +
                 std::to_string(options.grid_points) + " grid");
}
BENCHMARK(bm_landscape_scan)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
