// Ablation: how the variance-analysis depth shapes the improvement table.
//
// The paper keeps the variance-analysis circuits at "substantial depth"
// but never quotes the layer count (its Fig 1 landscapes use 100). This
// ablation sweeps the depth and shows why the repo's default is 50:
//   * shallow (~20): every near-identity strategy keeps large gradients,
//     improvements are compressed upward;
//   * ~50: the paper's reported spread (Xavier ~62 %, cluster ~25-40 %)
//     is best reproduced;
//   * >= 100: the He/LeCun/Orthogonal strategies' angle variances (~1/q)
//     are large enough that deep circuits scramble to a 2-design anyway
//     and their improvement over random collapses, while Xavier
//     (variance ~2/layers) keeps improving.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Ablation — improvement vs random as a function of circuit depth",
      "Q = {2,4,6,8,10}, 100 circuits/point, global cost, seed 42");

  const std::vector<std::size_t> depths{20, 30, 50, 100};
  Table table({"depth", "xavier-normal [%]", "xavier-uniform [%]", "he [%]",
               "lecun [%]", "orthogonal [%]", "random slope"});
  for (const std::size_t depth : depths) {
    VarianceExperimentOptions options;
    options.circuits_per_point = 100;
    options.layers = depth;
    const VarianceResult result =
        VarianceExperiment(options).run_paper_set();
    table.begin_row();
    table.push(depth);
    table.push(result.improvement_percent("xavier-normal"), 1);
    table.push(result.improvement_percent("xavier-uniform"), 1);
    table.push(result.improvement_percent("he"), 1);
    table.push(result.improvement_percent("lecun"), 1);
    table.push(result.improvement_percent("orthogonal"), 1);
    table.push(result.find("random").decay_fit.slope, 3);
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "paper reference: Xavier 62.3 %%, He 32 %%, LeCun 28.3 %%, "
      "Orthogonal 26.4 %%.\n\n");
}

void bm_experiment_point(benchmark::State& state) {
  using namespace qbarren;
  VarianceExperimentOptions options;
  options.qubit_counts = {4};
  options.circuits_per_point = 10;
  options.layers = static_cast<std::size_t>(state.range(0));
  const auto init = make_initializer("random");
  const VarianceExperiment experiment(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment.run({init.get()}).series[0].points[0].variance);
  }
}
BENCHMARK(bm_experiment_point)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
