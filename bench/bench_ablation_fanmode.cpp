// Ablation: the fan-in/fan-out convention behind the classical formulas.
//
// The paper never states what tensor shape its initializers saw. This
// ablation reruns the Fig 5a experiment under both conventions qbarren
// implements:
//   * layer-tensor (default): fan_in = params per layer, fan_out = layers.
//     On deep variance circuits fan_out dominates Xavier's denominator,
//     separating Xavier (~2/layers) from He/LeCun (~1/qubits) — the
//     separation the paper reports.
//   * qubit-square: fan_in = fan_out = qubit count. Xavier's variance
//     becomes 1/q — identical to LeCun's — and the Xavier advantage
//     disappears, which is evidence the authors did *not* use this shape.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Ablation — fan-mode convention (layer-tensor vs qubit-square)",
      "Q = {2,4,6,8,10}, 100 circuits/point, depth 50, global cost");

  Table table({"fan mode", "xavier-normal [%]", "he [%]", "lecun [%]",
               "orthogonal [%]"});
  for (const FanMode mode :
       {FanMode::kLayerTensor, FanMode::kQubitSquare}) {
    VarianceExperimentOptions options;
    options.circuits_per_point = 100;
    const VarianceResult result =
        VarianceExperiment(options).run_paper_set(mode);
    table.begin_row();
    table.push(fan_mode_name(mode));
    table.push(result.improvement_percent("xavier-normal"), 1);
    table.push(result.improvement_percent("he"), 1);
    table.push(result.improvement_percent("lecun"), 1);
    table.push(result.improvement_percent("orthogonal"), 1);
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected: only the layer-tensor convention separates Xavier from\n"
      "the He/LeCun/Orthogonal cluster the way the paper reports.\n\n");
}

void bm_fan_computation(benchmark::State& state) {
  using namespace qbarren;
  Rng rng(1);
  VarianceAnsatzOptions options;
  options.layers = 50;
  const Circuit circuit = variance_ansatz(10, rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_fans(circuit, FanMode::kLayerTensor).fan_in);
  }
}
BENCHMARK(bm_fan_computation);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
