// Ablation: gradient variance vs parameter position.
//
// The paper differentiates the *last* parameter (§IV-C). McClean et al.'s
// 2-design argument predicts the variance is position-independent once
// the circuit pieces on both sides of the parameter are deep enough; near
// the edges (first / last parameters) one side is shallow. This harness
// measures the variance at five fractional positions under random and
// Xavier initialization, validating that the paper's last-parameter choice
// is representative for the global cost.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

void reproduce() {
  bench::print_banner(
      "Ablation — gradient variance vs parameter position",
      "Q = {2,4,6,8}, 100 circuits/point, depth 30, global cost,\n"
      "adjoint full gradients (all positions from one backward sweep)");

  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 6, 8};
  options.circuits_per_point = 100;
  options.layers = 30;

  for (const char* name : {"random", "xavier-normal"}) {
    const auto init = make_initializer(name);
    const PositionalVarianceResult result =
        positional_variance(options, *init);
    std::printf("%s initialization:\n%s\n", name,
                result.table().to_ascii().c_str());
  }
  std::printf(
      "expected shape: for the global cost the position dependence is\n"
      "mild (within a small constant factor), so the paper's choice of\n"
      "the last parameter is representative.\n\n");
}

void bm_positional_point(benchmark::State& state) {
  VarianceExperimentOptions options;
  options.qubit_counts = {static_cast<std::size_t>(state.range(0))};
  options.circuits_per_point = 10;
  options.layers = 30;
  const auto init = make_initializer("random");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        positional_variance(options, *init).variances[0][0]);
  }
  state.SetLabel("10 circuits, 5 positions");
}
BENCHMARK(bm_positional_point)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
