// §VI-A reproduction: variance-decay improvement percentages vs random.
//
// The paper's headline numbers: Xavier ~62.3 %, He 32 %, LeCun 28.3 %,
// Orthogonal 26.4 % improvement in variance decay rate over random
// initialization. This harness reruns the Fig 5a experiment, computes the
// same improvement ratio (|slope_random| - |slope_t|) / |slope_random|,
// and prints a paper-vs-measured comparison.
//
// Reading the comparison: the reproduction targets the *shape* — all
// strategies improve on random, the Xavier variants by far the most, the
// He/LeCun/Orthogonal cluster moderately. Exact percentages depend on the
// unreported variance-analysis depth and the authors' tensor-shape
// conventions (see DESIGN.md §2); within-cluster ordering is noise-level.
#include <map>

#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Table (§VI-A) — decay-rate improvement vs random initialization",
      "derived from the Fig 5a experiment (200 circuits/point, depth 50)");

  const std::map<std::string, double> paper_numbers{
      {"xavier-normal", 62.3}, {"xavier-uniform", 62.3}, {"he", 32.0},
      {"lecun", 28.3},         {"orthogonal", 26.4},
  };

  VarianceExperimentOptions options;  // paper defaults baked in
  options.keep_samples = true;        // enables bootstrap CIs below
  const VarianceResult result =
      VarianceExperiment(options).run_paper_set();

  Table table({"initializer", "paper improvement [%]",
               "measured improvement [%]", "measured slope",
               "slope 95% CI (bootstrap)"});
  for (const VarianceSeries& s : result.series) {
    if (s.initializer == "random") continue;
    const SlopeConfidenceInterval ci = bootstrap_decay_ci(s, 300, 0.95);
    table.begin_row();
    table.push(s.initializer);
    table.push(paper_numbers.at(s.initializer), 1);
    table.push(result.improvement_percent(s.initializer), 1);
    table.push(s.decay_fit.slope, 4);
    // Built via += because GCC 12 flags char*-plus-rvalue-string operator+
    // with a spurious -Wrestrict under -Werror (GCC bug 105651).
    std::string ci_cell = "[";
    ci_cell += format_fixed(ci.lower, 3);
    ci_cell += ", ";
    ci_cell += format_fixed(ci.upper, 3);
    ci_cell += "]";
    table.push(std::move(ci_cell));
  }
  const SlopeConfidenceInterval random_ci =
      bootstrap_decay_ci(result.find("random"), 300, 0.95);
  std::printf(
      "random baseline slope: %.4f (R^2 %.4f, 95%% CI [%.3f, %.3f])\n\n",
      result.find("random").decay_fit.slope,
      result.find("random").decay_fit.r_squared, random_ci.lower,
      random_ci.upper);
  std::printf("%s\n", table.to_ascii().c_str());
}

void bm_decay_fit(benchmark::State& state) {
  using namespace qbarren;
  std::vector<double> xs;
  std::vector<double> ys;
  for (int q = 2; q <= 10; q += 2) {
    xs.push_back(q);
    ys.push_back(std::exp(-1.3 * q));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linear_fit(xs, log_transform(ys)).slope);
  }
}
BENCHMARK(bm_decay_fit);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
