// Shared helpers for the benchmark / reproduction harnesses.
//
// Each bench binary reproduces one figure or table of the paper: it prints
// the regenerated rows/series to stdout (the reproduction payload), then
// runs any registered google-benchmark timings of the kernels involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace qbarren::bench {

inline void print_banner(const std::string& experiment,
                         const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n\n");
}

/// Prints the reproduction payload via `reproduce`, then runs registered
/// google-benchmark timings. Returns a main()-compatible exit code.
template <typename Fn>
int run_bench_main(int argc, char** argv, Fn&& reproduce) {
  try {
    reproduce();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reproduction failed: %s\n", e.what());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace qbarren::bench
