// Ablation: initialization strategies beyond the paper's set.
//
// Adds to the Fig 5a protocol:
//   * beta            — BeInit-style Beta(2,2) angles (paper §II-e context)
//   * small-normal    — width-independent N(0, 0.1^2) (Grant-style
//                       near-identity start)
//   * he-uniform / lecun-uniform — the uniform variants of §III
//   * orthogonal-full — PyTorch-style whole-tensor semi-orthogonal matrix
//                       (entry variance 1/layers instead of 1/params-per-
//                       layer; stronger than Xavier on deep circuits)
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Ablation — extended initializer set under the Fig 5a protocol",
      "Q = {2,4,6,8,10}, 100 circuits/point, depth 50, global cost");

  VarianceExperimentOptions options;
  options.circuits_per_point = 100;
  const VarianceExperiment experiment(options);

  std::vector<std::unique_ptr<Initializer>> owned;
  for (const char* name :
       {"random", "xavier-normal", "he-uniform", "lecun-uniform", "beta",
        "small-normal", "orthogonal", "orthogonal-full"}) {
    owned.push_back(make_initializer(name));
  }
  std::vector<const Initializer*> ptrs;
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  const VarianceResult result = experiment.run(ptrs);
  std::printf("%s\n", result.decay_table().to_ascii().c_str());
  std::printf(
      "notes: beta behaves like random (its angle spread is O(1),\n"
      "width-independent); small-normal and orthogonal-full decay even\n"
      "more slowly than Xavier because their angle variance does not grow\n"
      "the effective circuit randomness with width.\n\n");
}

void bm_initializer_draw(benchmark::State& state) {
  using namespace qbarren;
  Rng circuit_rng(1);
  VarianceAnsatzOptions ansatz_options;
  ansatz_options.layers = 50;
  const Circuit circuit = variance_ansatz(10, circuit_rng, ansatz_options);
  const auto names = initializer_names();
  const auto init = make_initializer(names[static_cast<std::size_t>(
      state.range(0))]);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(init->initialize(circuit, rng).data());
  }
  state.SetLabel(init->name());
}
BENCHMARK(bm_initializer_draw)->DenseRange(0, 11);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
