// Ablation: entangling-gate and topology choice in the HEA (Eq 1 context).
//
// The paper's HEA "typically" entangles with CZ on a nearest-neighbour
// ladder. This ablation reruns the random-initialization variance decay
// with CNOT entanglers and with ring / all-to-all topologies: the decay
// rate is insensitive to the gate choice (CZ vs CNOT are locally
// equivalent) but steepens with connectivity, since denser entangling
// layers scramble to a 2-design at smaller depth.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

const char* gate_name(EntanglerGate gate) {
  return gate == EntanglerGate::kCz ? "CZ" : "CNOT";
}

const char* topology_name(EntanglerTopology topology) {
  switch (topology) {
    case EntanglerTopology::kLinear:
      return "linear";
    case EntanglerTopology::kRing:
      return "ring";
    case EntanglerTopology::kAllToAll:
      return "all-to-all";
  }
  return "?";
}

void reproduce() {
  bench::print_banner(
      "Ablation — entangler gate and topology in the variance analysis",
      "random initialization, Q = {2,4,6,8}, 100 circuits/point, depth 30");

  const auto random = make_initializer("random");
  Table table({"entangler", "topology", "decay slope", "R^2",
               "Var at q=8"});
  const std::vector<std::pair<EntanglerGate, EntanglerTopology>> configs{
      {EntanglerGate::kCz, EntanglerTopology::kLinear},
      {EntanglerGate::kCnot, EntanglerTopology::kLinear},
      {EntanglerGate::kCz, EntanglerTopology::kRing},
      {EntanglerGate::kCz, EntanglerTopology::kAllToAll},
  };
  for (const auto& [gate, topology] : configs) {
    VarianceExperimentOptions options;
    options.qubit_counts = {2, 4, 6, 8};
    options.circuits_per_point = 100;
    options.layers = 30;
    options.entangler = gate;
    options.topology = topology;
    const VarianceResult result =
        VarianceExperiment(options).run({random.get()});
    const VarianceSeries& s = result.series[0];
    table.begin_row();
    table.push(std::string(gate_name(gate)));
    table.push(std::string(topology_name(topology)));
    table.push(s.decay_fit.slope, 4);
    table.push(s.decay_fit.r_squared, 4);
    table.push(format_sci(s.points.back().variance, 3));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: CZ vs CNOT barely matters; denser connectivity\n"
      "(ring, all-to-all) decays at least as fast as the paper's ladder.\n\n");
}

void bm_entangling_layer(benchmark::State& state) {
  const auto topology = static_cast<EntanglerTopology>(state.range(0));
  StateVector s(10);
  Circuit c(10);
  add_entangling_layer(c, EntanglerGate::kCz, topology);
  for (auto _ : state) {
    c.apply(s, {});
    benchmark::DoNotOptimize(s.amplitudes().data());
  }
  state.SetLabel(topology_name(topology));
}
BENCHMARK(bm_entangling_layer)
    ->Arg(static_cast<int>(qbarren::EntanglerTopology::kLinear))
    ->Arg(static_cast<int>(qbarren::EntanglerTopology::kAllToAll));

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
