// Fig 5b reproduction: identity-function training with Gradient Descent.
//
// Paper protocol (§IV-D/V): 10-qubit, 5-layer Eq-3 HEA (145 gates, 100
// parameters), Eq-4 global cost C = 1 - p(|0...0>), 50 iterations of
// vanilla gradient descent at step size 0.1, one run per initializer.
//
// The gradients here come from adjoint differentiation, which computes the
// same values as the paper's parameter-shift rule (cross-checked in
// tests/test_grad.cpp) at a fraction of the cost.
#include "bench_common.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Fig 5b — loss convergence, Gradient Descent, 10-qubit / 5-layer HEA",
      "50 iterations, lr 0.1, global identity cost, seed 7");

  TrainingExperimentOptions options;  // paper defaults baked in
  options.optimizer = "gradient-descent";
  const TrainingExperiment experiment(options);
  const TrainingResult result = experiment.run_paper_set();

  std::printf("%s\n", result.loss_table(5).to_ascii().c_str());
  std::printf("%s\n", result.summary_table().to_ascii().c_str());
  std::printf(
      "expected shape (paper Fig 5b): randomly initialized training is\n"
      "trapped on the plateau (flat loss ~1.0); every classical strategy\n"
      "converges toward 0 within the 50-iteration budget.\n\n");
}

void bm_training_iteration(benchmark::State& state) {
  using namespace qbarren;
  // One gradient + step on the paper's exact ansatz.
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = 5;
  auto circuit =
      std::make_shared<const Circuit>(training_ansatz(10, ansatz_options));
  const CostFunction cost = make_identity_cost(circuit);
  const AdjointEngine engine;
  GradientDescent optimizer(0.1);
  optimizer.reset(circuit->num_parameters());
  Rng rng(7);
  std::vector<double> params =
      make_initializer("xavier-normal")->initialize(*circuit, rng);
  for (auto _ : state) {
    const auto vg =
        engine.value_and_gradient(*circuit, cost.observable(), params);
    optimizer.step(params, vg.gradient);
    benchmark::DoNotOptimize(vg.value);
  }
  state.SetLabel("adjoint gradient + GD step, 100 params");
}
BENCHMARK(bm_training_iteration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
