// Micro-benchmarks of the state-vector simulator kernels that dominate the
// reproduction workload. No reproduction payload — pure google-benchmark.
#include "bench_common.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/qsim/gates.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace {

using namespace qbarren;

void bm_single_qubit_gate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector s(n);
  const ComplexMatrix u = gates::ry(0.3);
  std::size_t target = 0;
  for (auto _ : state) {
    s.apply_single_qubit(u, target);
    target = (target + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dimension()));
}
BENCHMARK(bm_single_qubit_gate)->Arg(4)->Arg(10)->Arg(16)->Arg(20);

void bm_cz_gate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector s(n);
  std::size_t q = 0;
  for (auto _ : state) {
    s.apply_cz(q, q + 1);
    q = (q + 1) % (n - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dimension()));
}
BENCHMARK(bm_cz_gate)->Arg(4)->Arg(10)->Arg(16)->Arg(20);

void bm_two_qubit_generic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector s(n);
  const ComplexMatrix u = gates::crz(0.7);
  for (auto _ : state) {
    s.apply_two_qubit(u, 0, n - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.dimension()));
}
BENCHMARK(bm_two_qubit_generic)->Arg(4)->Arg(10)->Arg(16);

void bm_simulate_training_ansatz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TrainingAnsatzOptions options;
  options.layers = 5;
  const Circuit circuit = training_ansatz(n, options);
  Rng rng(1);
  const auto params =
      rng.uniform_vector(circuit.num_parameters(), 0.0, 2.0 * M_PI);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.simulate(params).norm_squared());
  }
  state.SetLabel(std::to_string(circuit.num_operations()) + " gates");
}
BENCHMARK(bm_simulate_training_ansatz)->Arg(4)->Arg(10)->Arg(14)
    ->Unit(benchmark::kMicrosecond);

void bm_simulate_deep_variance_ansatz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng structure_rng(2);
  VarianceAnsatzOptions options;
  options.layers = 50;
  const Circuit circuit = variance_ansatz(n, structure_rng, options);
  Rng rng(3);
  const auto params =
      rng.uniform_vector(circuit.num_parameters(), 0.0, 2.0 * M_PI);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.simulate(params).norm_squared());
  }
  state.SetLabel(std::to_string(circuit.num_operations()) + " gates");
}
BENCHMARK(bm_simulate_deep_variance_ansatz)->Arg(4)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

void bm_probability_readout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector s(n);
  s.apply_single_qubit(gates::hadamard(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.probability_one(0));
  }
}
BENCHMARK(bm_probability_readout)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
