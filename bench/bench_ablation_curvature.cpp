// Ablation: the barren plateau flattens curvature too.
//
// Cerezo & Coles (2021) show that all higher derivatives vanish with the
// gradient on a barren plateau, so second-order optimizers cannot escape
// it. This harness measures the variance of the last parameter's *second*
// derivative alongside the first, under random and Xavier initialization:
// both decay exponentially for random, both stay large for Xavier.
#include <cmath>

#include "bench_common.hpp"
#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/grad/hessian.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

struct CellStats {
  double grad_variance = 0.0;
  double curv_variance = 0.0;
};

CellStats measure(std::size_t qubits, std::size_t layers,
                  std::size_t circuits, const Initializer& init) {
  const GlobalZeroObservable obs(qubits);
  const ParameterShiftEngine engine;
  std::vector<double> grads(circuits);
  std::vector<double> curvs(circuits);
  const Rng root(42);
  for (std::size_t i = 0; i < circuits; ++i) {
    const Rng stream = root.child(i);
    Rng structure = stream.child(0);
    VarianceAnsatzOptions options;
    options.layers = layers;
    const Circuit c = variance_ansatz(qubits, structure, options);
    Rng prng = stream.child(1);
    const auto params = init.initialize(c, prng);
    const std::size_t last = c.num_parameters() - 1;
    grads[i] = engine.partial(c, obs, params, last);
    curvs[i] = second_partial(c, obs, params, last);
  }
  return CellStats{sample_variance(grads), sample_variance(curvs)};
}

void reproduce() {
  bench::print_banner(
      "Ablation — gradient vs curvature decay (second-order BP)",
      "Q = {2,4,6,8}, 80 circuits/point, depth 30, global cost");

  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");
  Table table({"qubits", "Var[dC] random", "Var[d2C] random",
               "Var[dC] xavier", "Var[d2C] xavier"});
  for (const std::size_t q : {2u, 4u, 6u, 8u}) {
    const CellStats r = measure(q, 30, 80, *random);
    const CellStats x = measure(q, 30, 80, *xavier);
    table.begin_row();
    table.push(q);
    table.push_sci(r.grad_variance);
    table.push_sci(r.curv_variance);
    table.push_sci(x.grad_variance);
    table.push_sci(x.curv_variance);
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: under random initialization gradient AND curvature\n"
      "variances decay together — second-order methods cannot rescue a\n"
      "plateau; Xavier keeps both alive.\n\n");
}

void bm_hessian_diagonal(benchmark::State& state) {
  TrainingAnsatzOptions options;
  options.layers = 2;
  const Circuit c =
      training_ansatz(static_cast<std::size_t>(state.range(0)), options);
  const GlobalZeroObservable obs(c.num_qubits());
  Rng rng(1);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 6.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hessian_diagonal(c, obs, params).data());
  }
  state.SetLabel(std::to_string(c.num_parameters()) + " params");
}
BENCHMARK(bm_hessian_diagonal)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
