// Ablation: cost-function locality (paper §II-d context).
//
// Cerezo et al. (Nat. Comms 2021) showed that *global* cost functions
// (the paper's Eq 4) exhibit barren plateaus at any depth while *local*
// costs keep polynomially large gradients up to logarithmic depth. This
// ablation reruns the randomly initialized variance analysis under both
// costs (plus the McClean-style ZZ observable) and compares decay slopes —
// context for why the paper's choice of a global cost makes its training
// problem maximally plateau-prone.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Ablation — gradient-variance decay vs cost-function locality",
      "random initialization, Q = {2,4,6,8,10}, 100 circuits/point, "
      "depth 50");

  const auto random = make_initializer("random");
  Table table({"cost", "decay slope (ln Var/qubit)", "R^2",
               "Var at q=2", "Var at q=10"});
  for (const CostKind kind :
       {CostKind::kGlobalZero, CostKind::kLocalZero, CostKind::kPauliZZ}) {
    VarianceExperimentOptions options;
    options.circuits_per_point = 100;
    options.cost = kind;
    // The ZZ observable has support {q0, q1} only; the paper's choice of
    // the *last* parameter (a rotation on qubit q-1) lies outside its
    // light cone — the trailing CZ ladder commutes with Z0 Z1, so that
    // gradient is identically zero for q > 2. Differentiate the first
    // parameter instead, which the whole circuit separates from the
    // measurement.
    if (kind == CostKind::kPauliZZ) {
      options.which_parameter = GradientParameter::kFirst;
    }
    const VarianceResult result =
        VarianceExperiment(options).run({random.get()});
    const VarianceSeries& s = result.series[0];
    table.begin_row();
    table.push(cost_kind_name(kind));
    table.push(s.decay_fit.slope, 4);
    table.push(s.decay_fit.r_squared, 4);
    table.push(format_sci(s.points.front().variance, 3));
    table.push(format_sci(s.points.back().variance, 3));
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape (Cerezo et al.): the global cost decays fastest;\n"
      "the local cost decays markedly more slowly at the same depth.\n\n");
}

void bm_cost_evaluation(benchmark::State& state) {
  using namespace qbarren;
  const std::size_t n = 10;
  const auto kind = static_cast<CostKind>(state.range(0));
  const auto obs = make_cost_observable(kind, n);
  StateVector s(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs->expectation(s));
  }
  state.SetLabel(cost_kind_name(kind));
}
BENCHMARK(bm_cost_evaluation)
    ->Arg(static_cast<int>(qbarren::CostKind::kGlobalZero))
    ->Arg(static_cast<int>(qbarren::CostKind::kLocalZero))
    ->Arg(static_cast<int>(qbarren::CostKind::kPauliZZ));

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
