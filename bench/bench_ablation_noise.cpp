// Ablation: barren plateaus under hardware noise (NISQ context of §I).
//
// Reruns a reduced variance analysis on the exact density-matrix simulator
// with a uniform depolarizing noise model. Depolarizing channels contract
// expectation values toward a constant, so gradients shrink *on top of*
// the unitary barren-plateau decay (cf. noise-induced barren plateaus,
// Wang et al. 2021): classical initialization strategies cannot recover
// what noise destroys.
//
// Density-matrix simulation is O(4^n) per gate, so this ablation runs at
// reduced width/depth/sample counts.
#include "bench_common.hpp"
#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/dsim/noisy.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

double noisy_gradient_variance(std::size_t qubits, std::size_t layers,
                               std::size_t circuits, const NoiseModel& noise,
                               const Initializer& init) {
  const GlobalZeroObservable obs(qubits);
  std::vector<double> grads(circuits);
  const Rng root(42);
  for (std::size_t i = 0; i < circuits; ++i) {
    const Rng circuit_stream = root.child(i);
    Rng structure_rng = circuit_stream.child(0);
    VarianceAnsatzOptions options;
    options.layers = layers;
    const Circuit circuit = variance_ansatz(qubits, structure_rng, options);
    Rng param_rng = circuit_stream.child(1);
    const auto params = init.initialize(circuit, param_rng);
    grads[i] = noisy_parameter_shift_partial(
        circuit, params, obs, noise, circuit.num_parameters() - 1);
  }
  return sample_variance(grads);
}

void reproduce() {
  bench::print_banner(
      "Ablation — gradient variance under depolarizing noise",
      "density-matrix simulation, Q = {2,3,4}, depth 8, 20 circuits/point,\n"
      "global cost, random + xavier-normal initialization");

  const std::vector<double> noise_levels{0.0, 0.01, 0.05};
  const auto random = make_initializer("random");
  const auto xavier = make_initializer("xavier-normal");

  Table table({"qubits", "noise p", "Var[random]", "Var[xavier-normal]"});
  for (const std::size_t q : {2u, 3u, 4u}) {
    for (const double p : noise_levels) {
      const NoiseModel noise =
          p > 0.0 ? make_depolarizing_model(p, p) : NoiseModel{};
      table.begin_row();
      table.push(q);
      table.push(p, 2);
      table.push_sci(noisy_gradient_variance(q, 8, 20, noise, *random));
      table.push_sci(noisy_gradient_variance(q, 8, 20, noise, *xavier));
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: at every width, variance falls as noise grows —\n"
      "noise compounds the plateau and affects every initializer.\n\n");
}

void bm_noisy_simulation(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  VarianceAnsatzOptions options;
  options.layers = 8;
  const Circuit circuit = variance_ansatz(q, rng, options);
  const auto params =
      rng.uniform_vector(circuit.num_parameters(), 0.0, 6.0);
  const NoiseModel noise = make_depolarizing_model(0.01, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_noisy(circuit, params, noise).trace());
  }
  state.SetLabel("density matrix, depth 8");
}
BENCHMARK(bm_noisy_simulation)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
