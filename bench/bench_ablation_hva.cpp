// Ablation: problem-aware ansatz (HVA) vs hardware-efficient ansatz (HEA)
// on the transverse-field Ising VQE.
//
// The paper fixes the hardware-efficient ansatz and varies initialization;
// the complementary axis is the ansatz itself. The Hamiltonian variational
// ansatz builds its layers from the problem's own terms, giving a far
// smaller, structured parameter space. This bench trains both (Adam,
// lr 0.1) from random and Xavier starts and compares the energy error
// against the exact ground state.
#include <cmath>

#include "bench_common.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/obs/hva.hpp"
#include "qbarren/opt/trainer.hpp"

namespace {

using namespace qbarren;

void reproduce() {
  bench::print_banner(
      "Ablation — HVA vs HEA on the transverse-field Ising VQE",
      "6-qubit critical TFI (J = h = 1), 80 Adam iterations at lr 0.1");

  const std::size_t qubits = 6;
  auto hamiltonian = std::make_shared<PauliSumObservable>(
      transverse_field_ising(qubits, 1.0, 1.0));
  const double exact = ground_state_energy(*hamiltonian);
  std::printf("exact ground-state energy: %.6f\n\n", exact);

  const AdjointEngine engine;
  TrainOptions train_options;
  train_options.max_iterations = 80;

  Table table({"ansatz", "initializer", "parameters", "final energy",
               "error"});

  auto run = [&](const std::string& label,
                 std::shared_ptr<const Circuit> circuit,
                 const std::string& init_name) {
    const CostFunction cost(circuit, hamiltonian);
    Rng rng(5);
    auto params = make_initializer(init_name)->initialize(*circuit, rng);
    auto optimizer = make_optimizer("adam", 0.1);
    const TrainResult result =
        train(cost, engine, *optimizer, std::move(params), train_options);
    table.begin_row();
    table.push(label);
    table.push(init_name);
    table.push(circuit->num_parameters());
    table.push(result.final_loss, 6);
    table.push(result.final_loss - exact, 6);
  };

  TrainingAnsatzOptions hea_options;
  hea_options.layers = 3;
  auto hea = std::make_shared<const Circuit>(
      training_ansatz(qubits, hea_options));
  HvaOptions hva_options;
  hva_options.layers = 3;
  auto hva = std::make_shared<const Circuit>(
      hva_ansatz(*hamiltonian, hva_options));

  for (const char* init : {"random", "xavier-normal"}) {
    run("HEA (Eq 3, 3 layers)", hea, init);
    run("HVA (3 layers)", hva, init);
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "expected shape: at matched parameter counts the HVA reaches lower\n"
      "error from both starts — problem structure is an alternative cure\n"
      "to careful initialization.\n\n");
}

void bm_hva_simulation(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  const PauliSumObservable h = transverse_field_ising(qubits, 1.0, 1.0);
  HvaOptions options;
  options.layers = 3;
  const Circuit c = hva_ansatz(h, options);
  Rng rng(1);
  const auto params = rng.uniform_vector(c.num_parameters(), 0.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.simulate(params).norm_squared());
  }
  state.SetLabel(std::to_string(c.num_operations()) + " gates");
}
BENCHMARK(bm_hva_simulation)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
