// Extension analysis: expressibility & entanglement of initialized
// ensembles (Sim et al. 2019 metrics applied to the paper's strategies).
//
// The conceptual complement to Fig 5a: barren plateaus are the price of
// Haar-expressive ensembles. Random initialization is the most expressive
// (lowest KL from Haar, highest entanglement) and trains worst; the
// classical strategies concentrate the ensemble near the identity (high
// KL, low entanglement) and train best. This quantifies the trade-off the
// paper exploits.
#include "bench_common.hpp"
#include "qbarren/bp/expressibility.hpp"
#include "qbarren/init/registry.hpp"

namespace {

using namespace qbarren;

void reproduce() {
  bench::print_banner(
      "Extension — expressibility / entanglement of initialized ensembles",
      "Eq 3 ansatz, 4 qubits x 5 layers, 300 state pairs per strategy,\n"
      "fidelity histogram vs Haar prediction (40 bins), seed 17");

  const auto owned = paper_initializers();
  std::vector<const Initializer*> ptrs;
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  const ExpressibilityOptions options;  // defaults documented above
  const auto results = analyze_expressibility(ptrs, options);
  std::printf("%s\n", expressibility_table(results).to_ascii().c_str());
  std::printf(
      "reading: KL ~ 0 means Haar-like (expressive, plateau-prone);\n"
      "large KL + high mean fidelity means the ensemble concentrates near\n"
      "the identity, which is exactly what makes it trainable.\n\n");
}

void bm_expressibility_pair(benchmark::State& state) {
  // One fidelity sample: two initializations + simulations + overlap.
  ExpressibilityOptions options;
  options.qubits = static_cast<std::size_t>(state.range(0));
  options.pairs = 10;
  options.bins = 10;
  const auto random = make_initializer("random");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_expressibility({random.get()}, options)[0].kl_divergence);
  }
  state.SetLabel("10 pairs");
}
BENCHMARK(bm_expressibility_pair)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
