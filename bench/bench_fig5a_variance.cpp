// Fig 5a reproduction: gradient-variance decay per initialization strategy.
//
// Paper protocol (§IV-B/C): for q in {2,4,6,8,10}, 200 random Eq-2 HEA
// circuits per qubit count (one randomly drawn rotation in {RX,RY,RZ} per
// qubit per layer + CZ ladder), gradient of the cost with respect to the
// *last* parameter via the parameter-shift rule, variance over the 200
// samples, plotted on a log scale against q.
//
// The paper quotes "substantial depth" without a number; depth 50 is this
// repo's calibrated default (see bench_ablation_depth). The printed
// variance table is the Fig 5a data; the decay table's slopes are the
// "variance decay rates" of §VI-A.
#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Fig 5a — gradient variance vs qubits, six initializers",
      "Q = {2,4,6,8,10}, 200 circuits/point, depth 50, global cost,\n"
      "parameter-shift gradients, seed 42");

  VarianceExperimentOptions options;  // paper defaults baked in
  const VarianceExperiment experiment(options);
  const VarianceResult result = experiment.run_paper_set();

  std::printf("%s\n", result.variance_table().to_ascii().c_str());
  std::printf("%s\n", result.decay_table().to_ascii().c_str());
  std::printf(
      "expected shape (paper Fig 5a): every strategy's log-variance falls\n"
      "roughly linearly in q; random has the steepest slope; the Xavier\n"
      "variants decay far more slowly; He/LeCun/Orthogonal sit between.\n\n");
}

void bm_variance_cell(benchmark::State& state) {
  // One (q, initializer) cell at reduced sample count: the unit of work
  // the full experiment repeats 5 (qubit counts) x 6 (initializers) times.
  using namespace qbarren;
  VarianceExperimentOptions options;
  options.qubit_counts = {static_cast<std::size_t>(state.range(0))};
  options.circuits_per_point = 20;
  options.layers = 50;
  const VarianceExperiment experiment(options);
  const auto init = make_initializer("random");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment.run({init.get()}).series[0].points[0].variance);
  }
  state.SetLabel("20 circuits, depth 50");
}
BENCHMARK(bm_variance_cell)->Arg(2)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
