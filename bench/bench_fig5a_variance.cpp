// Fig 5a reproduction: gradient-variance decay per initialization strategy.
//
// Paper protocol (§IV-B/C): for q in {2,4,6,8,10}, 200 random Eq-2 HEA
// circuits per qubit count (one randomly drawn rotation in {RX,RY,RZ} per
// qubit per layer + CZ ladder), gradient of the cost with respect to the
// *last* parameter via the parameter-shift rule, variance over the 200
// samples, plotted on a log scale against q.
//
// The paper quotes "substantial depth" without a number; depth 50 is this
// repo's calibrated default (see bench_ablation_depth). The printed
// variance table is the Fig 5a data; the decay table's slopes are the
// "variance decay rates" of §VI-A.
#include <chrono>

#include "bench_common.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/init/registry.hpp"

namespace {

void reproduce() {
  using namespace qbarren;
  bench::print_banner(
      "Fig 5a — gradient variance vs qubits, six initializers",
      "Q = {2,4,6,8,10}, 200 circuits/point, depth 50, global cost,\n"
      "parameter-shift gradients, seed 42");

  VarianceExperimentOptions options;  // paper defaults baked in
  const VarianceExperiment experiment(options);
  const VarianceResult result = experiment.run_paper_set();

  std::printf("%s\n", result.variance_table().to_ascii().c_str());
  std::printf("%s\n", result.decay_table().to_ascii().c_str());
  std::printf(
      "expected shape (paper Fig 5a): every strategy's log-variance falls\n"
      "roughly linearly in q; random has the steepest slope; the Xavier\n"
      "variants decay far more slowly; He/LeCun/Orthogonal sit between.\n\n");
}

void bm_variance_cell(benchmark::State& state) {
  // One (q, initializer) cell at reduced sample count: the unit of work
  // the full experiment repeats 5 (qubit counts) x 6 (initializers) times.
  using namespace qbarren;
  VarianceExperimentOptions options;
  options.qubit_counts = {static_cast<std::size_t>(state.range(0))};
  options.circuits_per_point = 20;
  options.layers = 50;
  const VarianceExperiment experiment(options);
  const auto init = make_initializer("random");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment.run({init.get()}).series[0].points[0].variance);
  }
  state.SetLabel("20 circuits, depth 50");
}
BENCHMARK(bm_variance_cell)->Arg(2)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void bm_variance_jobs_scaling(benchmark::State& state) {
  // Wall-clock of the same reduced grid at --jobs 1 vs --jobs <hardware>.
  // The cells are embarrassingly parallel, so the ratio approaches the
  // core count on unloaded multi-core machines; the results themselves
  // are byte-identical at both job counts (see test_resilience).
  using namespace qbarren;
  using Clock = std::chrono::steady_clock;
  VarianceExperimentOptions options;
  options.qubit_counts = {2, 4, 6};
  options.circuits_per_point = 20;
  options.layers = 50;
  const VarianceExperiment experiment(options);
  const auto init = make_initializer("random");
  const std::size_t hw = Executor::resolve_jobs(0);
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double interpreted_seconds = 0.0;
  for (auto _ : state) {
    RunControl control;
    control.jobs = 1;
    const auto t0 = Clock::now();
    benchmark::DoNotOptimize(
        experiment.run({init.get()}, control).series[0].points[0].variance);
    const auto t1 = Clock::now();
    control.jobs = hw;
    benchmark::DoNotOptimize(
        experiment.run({init.get()}, control).series[0].points[0].variance);
    const auto t2 = Clock::now();
    serial_seconds += std::chrono::duration<double>(t1 - t0).count();
    parallel_seconds += std::chrono::duration<double>(t2 - t1).count();
    // Same single-threaded grid with compiled plans disabled: isolates
    // what the exec layer buys before any parallelism.
    {
      exec::ScopedExecutionPlans off(false);
      control.jobs = 1;
      const auto t3 = Clock::now();
      benchmark::DoNotOptimize(
          experiment.run({init.get()}, control).series[0].points[0].variance);
      interpreted_seconds +=
          std::chrono::duration<double>(Clock::now() - t3).count();
    }
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["jobs"] = static_cast<double>(hw);
  state.counters["serial_seconds"] = serial_seconds / n;
  state.counters["parallel_seconds"] = parallel_seconds / n;
  state.counters["scaling_ratio"] =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  state.counters["compiled_seconds"] = serial_seconds / n;
  state.counters["interpreted_seconds"] = interpreted_seconds / n;
  state.counters["compiled_speedup"] =
      serial_seconds > 0.0 ? interpreted_seconds / serial_seconds : 0.0;
  state.SetLabel("q={2,4,6}, 20 circuits, depth 50, jobs 1 vs " +
                 std::to_string(hw) + ", compiled vs interpreted");
}
BENCHMARK(bm_variance_jobs_scaling)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return qbarren::bench::run_bench_main(argc, argv, reproduce);
}
